//! A row-major 2-D matrix, the backing store of the environment (`mat`),
//! index, and pheromone fields.

/// Row-major 2-D container addressed as `(row, col)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix<T> {
    height: usize,
    width: usize,
    data: Vec<T>,
}

impl<T: Copy> Matrix<T> {
    /// A `height × width` matrix filled with `fill`.
    pub fn filled(height: usize, width: usize, fill: T) -> Self {
        Self {
            height,
            width,
            data: vec![fill; height * width],
        }
    }

    /// Wrap an existing row-major vector.
    ///
    /// Panics if `data.len() != height * width`.
    pub fn from_vec(height: usize, width: usize, data: Vec<T>) -> Self {
        assert_eq!(data.len(), height * width, "matrix extent mismatch");
        Self {
            height,
            width,
            data,
        }
    }

    /// Rows.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether `(r, c)` lies inside the matrix (signed, so neighbourhood
    /// arithmetic can probe without casts).
    #[inline]
    pub fn in_bounds(&self, r: i64, c: i64) -> bool {
        r >= 0 && c >= 0 && (r as usize) < self.height && (c as usize) < self.width
    }

    /// Linear index of `(r, c)`.
    #[inline]
    pub fn linear(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.height && c < self.width);
        r * self.width + c
    }

    /// Read `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> T {
        self.data[self.linear(r, c)]
    }

    /// Read `(r, c)` with signed coordinates, `fill` outside bounds.
    #[inline]
    pub fn get_or(&self, r: i64, c: i64, fill: T) -> T {
        if self.in_bounds(r, c) {
            self.get(r as usize, c as usize)
        } else {
            fill
        }
    }

    /// Write `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: T) {
        let i = self.linear(r, c);
        self.data[i] = v;
    }

    /// The raw row-major slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The raw row-major slice, mutable.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the raw vector.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.width..(r + 1) * self.width]
    }

    /// Iterate `(r, c, value)` in row-major order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / self.width, i % self.width, v))
    }

    /// Overwrite every cell.
    pub fn fill(&mut self, v: T) {
        self.data.fill(v);
    }
}

impl<T: Copy + PartialEq> Matrix<T> {
    /// Count cells equal to `v`.
    pub fn count(&self, v: T) -> usize {
        self.data.iter().filter(|&&x| x == v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut m = Matrix::filled(4, 6, 0u8);
        m.set(3, 5, 9);
        assert_eq!(m.get(3, 5), 9);
        assert_eq!(m.as_slice()[3 * 6 + 5], 9);
    }

    #[test]
    fn bounds() {
        let m = Matrix::filled(4, 6, 0u8);
        assert!(m.in_bounds(0, 0));
        assert!(m.in_bounds(3, 5));
        assert!(!m.in_bounds(-1, 0));
        assert!(!m.in_bounds(0, 6));
        assert!(!m.in_bounds(4, 0));
        assert_eq!(m.get_or(-1, 0, 7), 7);
        assert_eq!(m.get_or(2, 2, 7), 0);
    }

    #[test]
    fn rows_and_iter() {
        let m = Matrix::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.row(1), &[4, 5, 6]);
        let cells: Vec<_> = m.iter_cells().collect();
        assert_eq!(cells[4], (1, 1, 5));
    }

    #[test]
    fn count_values() {
        let m = Matrix::from_vec(2, 2, vec![1u8, 0, 1, 1]);
        assert_eq!(m.count(1), 3);
        assert_eq!(m.count(0), 1);
    }

    #[test]
    #[should_panic(expected = "extent mismatch")]
    fn from_vec_checks_extent() {
        let _ = Matrix::from_vec(2, 3, vec![0u8; 5]);
    }
}
