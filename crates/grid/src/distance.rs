//! Pre-computed distance tables (the paper's constant-memory distance
//! matrix, §IV.a), generalised to N directional groups.
//!
//! For an agent of group *g* standing in row *r*, the paper needs the
//! distance from each of its eight neighbour cells to the agent's target —
//! the far edge of the environment. The distance is measured to the point
//! of the target row directly ahead of the agent, so a lateral offset
//! *does* cost: with vertical distance `d = |target_row − (r + dr)|` and
//! lateral offset `dc`, the table holds `√(d² + dc²)`.
//!
//! This reproduces the strict ordering the paper states for a top agent
//! (§IV.b): Cell #1 (forward, `d−1`) < #2 = #3 (forward diagonals,
//! `√((d−1)²+1)`) < #4 = #5 (lateral, `√(d²+1)`) < #6 (backward, `d+1`)
//! < #7 = #8 (backward diagonals) — and symmetrically for bottom agents.
//!
//! Distances are clamped to a small positive floor so eq. (1)'s
//! `D_min / D_i` and eq. (2)'s `η = 1/D` stay finite for agents standing on
//! the target row itself (the paper requires `D_i ≠ 0`).
//!
//! ## Group indexing
//!
//! A flattened field holds one plane per group, indexed by
//! [`Group::index`]; alongside the planes it carries each group's *forward
//! neighbour slot* (derived from the group's [`crate::cell::Heading`]),
//! which anchors forward-priority movement and flow-field tie-breaking.
//! The row-table fast path is inherently two-group (it encodes "how far is
//! the far edge"); worlds with more groups or non-edge targets route
//! through the grid layout.

use crate::cell::{Group, Heading, NEIGHBOR_OFFSETS};

/// Floor applied to all distances (cells); keeps `1/D` finite.
pub const DISTANCE_FLOOR: f32 = 0.5;

/// Memory layout of a flattened distance field (what the kernels receive
/// in constant memory alongside the raw `&[f32]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceKind {
    /// The paper's row-based tables: `[group][row][neighbour]`, `2·H·8`
    /// entries. Valid only for obstacle-free two-group worlds whose
    /// targets are the full opposite edges.
    Rows,
    /// A per-group flow-field potential: `[group][row][col]`, `G·H·W`
    /// entries holding each cell's (floored) shortest-path distance to the
    /// group's target region; walls and unreachable cells hold `f32::MAX`.
    Grid,
}

/// The default forward slots when a field is built without explicit
/// headings: groups 0/1 keep the paper's down/up corridor convention, and
/// further groups cycle right/left — multi-group scenarios always override
/// this with their derived headings.
pub fn default_forward_slots(groups: usize) -> Vec<u8> {
    const CYCLE: [Heading; 4] = [Heading::Down, Heading::Up, Heading::Right, Heading::Left];
    (0..groups)
        .map(|g| CYCLE[g % 4].forward_index() as u8)
        .collect()
}

/// A borrowed, layout-tagged view over a flattened distance field — the
/// form both engines and all kernels consume, so the constant-memory
/// upload stays a plain `Vec<f32>` whichever layout backs it.
#[derive(Debug, Clone, Copy)]
pub struct DistRef<'a> {
    /// Layout of `data`.
    pub kind: DistanceKind,
    /// Environment height.
    pub height: usize,
    /// Environment width.
    pub width: usize,
    /// Group planes held in `data`.
    pub groups: usize,
    /// Per-group forward neighbour slot (`forward[g]` is group `g`'s
    /// heading's [`Heading::forward_index`]).
    pub forward: &'a [u8],
    /// The flattened field.
    pub data: &'a [f32],
}

impl DistRef<'_> {
    /// Distance from the `k`-th neighbour of a group-`g` agent at `(r, c)`
    /// to that agent's target. Out-of-bounds neighbours (grid layout only)
    /// read as `f32::MAX`; such neighbours are walls to the caller anyway.
    #[inline]
    pub fn neighbor(&self, g: Group, r: i64, c: i64, k: usize) -> f32 {
        debug_assert!(g.index() < self.groups, "group plane out of range");
        match self.kind {
            DistanceKind::Rows => DistanceTables::lookup(self.data, self.height, g, r as usize, k),
            DistanceKind::Grid => {
                let (dr, dc) = NEIGHBOR_OFFSETS[k];
                let (nr, nc) = (r + dr, c + dc);
                if nr < 0 || nc < 0 || nr as usize >= self.height || nc as usize >= self.width {
                    f32::MAX
                } else {
                    self.data[(g.index() * self.height + nr as usize) * self.width + nc as usize]
                }
            }
        }
    }

    /// The forward neighbour slot of group `g` (its heading's
    /// [`Heading::forward_index`]).
    #[inline]
    pub fn forward_k(&self, g: Group) -> usize {
        self.forward[g.index()] as usize
    }

    /// The neighbour slot a group-`g` agent at `(r, c)` treats as its
    /// *front cell* (the forward-priority target): the distance-argmin
    /// neighbour, ties broken toward the group's forward slot.
    ///
    /// For the row layout the argmin provably *is* the forward cell (paper
    /// §IV.b's strict ordering; the only tie is with the backward cell
    /// when the agent stands on its own target row, which the tie-break
    /// resolves forward), so this returns the group's forward slot without
    /// touching the data — the legacy corridor behaviour, bit for bit.
    #[inline]
    pub fn front_k(&self, g: Group, r: i64, c: i64) -> usize {
        let fwd = self.forward_k(g);
        match self.kind {
            DistanceKind::Rows => fwd,
            DistanceKind::Grid => {
                let mut best = fwd;
                let mut best_d = self.neighbor(g, r, c, best);
                for k in 0..8 {
                    if k == fwd {
                        continue;
                    }
                    let d = self.neighbor(g, r, c, k);
                    if d < best_d {
                        best = k;
                        best_d = d;
                    }
                }
                best
            }
        }
    }
}

/// An owned, layout-tagged flattened distance field — what an engine holds
/// and what gets uploaded into a constant buffer. Built from any
/// [`DistanceField`] implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceData {
    /// Layout of `data`.
    pub kind: DistanceKind,
    /// Environment height.
    pub height: usize,
    /// Environment width (0 for the row layout, which ignores it).
    pub width: usize,
    /// Group planes held in `data`.
    pub groups: usize,
    /// Per-group forward neighbour slots.
    pub forward: Vec<u8>,
    /// The flattened field.
    pub data: Vec<f32>,
}

impl DistanceData {
    /// Snapshot a field into owned form, taking the field's own forward
    /// slots ([`DistanceField::forward_slots`]).
    pub fn from_field(field: &impl DistanceField) -> Self {
        let groups = field.field_groups();
        Self {
            kind: field.kind(),
            height: field.field_height(),
            width: field.field_width(),
            groups,
            forward: field.forward_slots(),
            data: field.flat().to_vec(),
        }
    }

    /// Override the per-group forward slots (from scenario headings).
    pub fn with_forward(mut self, forward: Vec<u8>) -> Self {
        assert_eq!(
            forward.len(),
            self.groups,
            "forward slots must cover every group plane"
        );
        assert!(forward.iter().all(|&k| (k as usize) < 8));
        self.forward = forward;
        self
    }

    /// The paper's row tables for an obstacle-free two-group corridor of
    /// `height`.
    pub fn rows(height: usize) -> Self {
        Self::from_field(&DistanceTables::new(height))
    }

    /// A layout-tagged borrowed view.
    #[inline]
    pub fn dist_ref(&self) -> DistRef<'_> {
        DistRef {
            kind: self.kind,
            height: self.height,
            width: self.width,
            groups: self.groups,
            forward: &self.forward,
            data: &self.data,
        }
    }
}

/// A distance-to-target field usable by the simulation: the row-based
/// [`DistanceTables`] fast path for obstacle-free two-group corridors, or
/// the per-group [`crate::flowfield::GridDistanceField`] for worlds with
/// interior obstacles, non-edge targets, or more than two groups.
pub trait DistanceField {
    /// Layout of the flattened data.
    fn kind(&self) -> DistanceKind;

    /// Environment height the field was built for.
    fn field_height(&self) -> usize;

    /// Environment width the field was built for.
    fn field_width(&self) -> usize;

    /// Group planes the field holds.
    fn field_groups(&self) -> usize;

    /// Per-group forward neighbour slots
    /// (defaults to [`default_forward_slots`]).
    fn forward_slots(&self) -> Vec<u8> {
        default_forward_slots(self.field_groups())
    }

    /// The flattened field (what gets uploaded to constant memory).
    fn flat(&self) -> &[f32];
}

/// Per-(group, row, neighbour) distances to target for the classic
/// two-group corridor, laid out for constant memory: `[group][row][k]`
/// flattened row-major.
#[derive(Debug, Clone)]
pub struct DistanceTables {
    height: usize,
    /// `2 * height * 8` entries.
    data: Vec<f32>,
}

impl DistanceTables {
    /// Build the tables for an environment of `height` rows.
    pub fn new(height: usize) -> Self {
        assert!(height >= 2, "environment must have at least two rows");
        let mut data = Vec::with_capacity(2 * height * 8);
        for group in Group::BOTH {
            let target = group.target_row(height) as i64;
            for row in 0..height as i64 {
                for (dr, dc) in NEIGHBOR_OFFSETS {
                    let vert = (target - (row + dr)) as f32;
                    let lat = dc as f32;
                    let d = (vert * vert + lat * lat).sqrt();
                    data.push(d.max(DISTANCE_FLOOR));
                }
            }
        }
        Self { height, data }
    }

    /// Distance from the `k`-th neighbour of a group-`g` agent in `row` to
    /// that agent's target.
    #[inline]
    pub fn get(&self, g: Group, row: usize, k: usize) -> f32 {
        debug_assert!(row < self.height && k < 8);
        self.data[(g.index() * self.height + row) * 8 + k]
    }

    /// Minimum over the eight neighbours (eq. (1)'s `D_min`).
    #[inline]
    pub fn min_for(&self, g: Group, row: usize) -> f32 {
        let base = (g.index() * self.height + row) * 8;
        self.data[base..base + 8]
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// The raw flattened table (for upload into a `ConstantBuffer`).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Environment height the tables were built for.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// A layout-tagged borrowed view (the paper's two-group forward
    /// convention).
    pub fn dist_ref(&self) -> DistRef<'_> {
        const ROWS_FORWARD: [u8; 2] = [0, 5];
        DistRef {
            kind: DistanceKind::Rows,
            height: self.height,
            width: 0,
            groups: 2,
            forward: &ROWS_FORWARD,
            data: &self.data,
        }
    }

    /// Compute the same value as [`DistanceTables::get`] from the raw slice
    /// (used by kernels that hold only the constant buffer).
    #[inline]
    pub fn lookup(data: &[f32], height: usize, g: Group, row: usize, k: usize) -> f32 {
        data[(g.index() * height + row) * 8 + k]
    }
}

impl DistanceField for DistanceTables {
    fn kind(&self) -> DistanceKind {
        DistanceKind::Rows
    }

    fn field_height(&self) -> usize {
        self.height
    }

    /// The row layout is column-independent; the width slot of the view is
    /// unused.
    fn field_width(&self) -> usize {
        0
    }

    fn field_groups(&self) -> usize {
        2
    }

    fn flat(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ordering_for_top_agent() {
        let t = DistanceTables::new(480);
        let row = 100; // mid-environment, target row 479, d = 379
        let d: Vec<f32> = (0..8).map(|k| t.get(Group::TOP, row, k)).collect();
        // #1 < #2 = #3 < #4 = #5 < #6 < #7 = #8 (0-based indices 0..8)
        assert!(d[0] < d[1]);
        assert!((d[1] - d[2]).abs() < 1e-6);
        assert!(d[2] < d[3]);
        assert!((d[3] - d[4]).abs() < 1e-6);
        assert!(d[4] < d[5]);
        assert!(d[5] < d[6]);
        assert!((d[6] - d[7]).abs() < 1e-6);
    }

    #[test]
    fn paper_ordering_for_bottom_agent_mirrors() {
        let t = DistanceTables::new(480);
        let row = 300; // target row 0
                       // For a bottom agent the forward cell is k=5 (#6).
        let d: Vec<f32> = (0..8).map(|k| t.get(Group::BOTTOM, row, k)).collect();
        assert!(d[5] < d[6]);
        assert!((d[6] - d[7]).abs() < 1e-6);
        assert!(d[6] < d[3]);
        assert!(d[3] < d[0]);
        assert!(d[0] < d[1]);
    }

    #[test]
    fn forward_distance_decrements_per_row() {
        let t = DistanceTables::new(100);
        // Top agent: forward distance from row r is (99 - (r+1)).
        assert!((t.get(Group::TOP, 10, 0) - 88.0).abs() < 1e-5);
        assert!((t.get(Group::TOP, 97, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn floor_applies_at_target() {
        let t = DistanceTables::new(100);
        // One row short of the target: the forward cell *is* the target
        // (distance zero) → floored to keep 1/D finite.
        assert_eq!(t.get(Group::TOP, 98, 0), DISTANCE_FLOOR);
        assert_eq!(t.get(Group::BOTTOM, 1, 5), DISTANCE_FLOOR);
        assert!(t.as_slice().iter().all(|&d| d >= DISTANCE_FLOOR));
    }

    #[test]
    fn min_is_forward_cell_mid_grid() {
        let t = DistanceTables::new(480);
        assert_eq!(t.min_for(Group::TOP, 200), t.get(Group::TOP, 200, 0));
        assert_eq!(t.min_for(Group::BOTTOM, 200), t.get(Group::BOTTOM, 200, 5));
    }

    #[test]
    fn dist_ref_matches_tables() {
        let t = DistanceTables::new(64);
        let v = t.dist_ref();
        assert_eq!(v.kind, DistanceKind::Rows);
        assert_eq!(v.groups, 2);
        for row in [0i64, 17, 63] {
            for k in 0..8 {
                assert_eq!(
                    v.neighbor(Group::TOP, row, 30, k),
                    t.get(Group::TOP, row as usize, k)
                );
            }
            // The row fast path's front cell is the group-forward cell.
            assert_eq!(v.front_k(Group::TOP, row, 30), Group::TOP.forward_index());
            assert_eq!(
                v.front_k(Group::BOTTOM, row, 30),
                Group::BOTTOM.forward_index()
            );
        }
    }

    #[test]
    fn row_argmin_is_forward_everywhere() {
        // The claim front_k relies on: over every row, no neighbour beats
        // the group-forward cell (ties allowed).
        for height in [4usize, 17, 480] {
            let t = DistanceTables::new(height);
            for g in Group::BOTH {
                for row in 0..height {
                    let fwd = t.get(g, row, g.forward_index());
                    for k in 0..8 {
                        assert!(
                            t.get(g, row, k) >= fwd - 1e-6,
                            "h={height} {g:?} row={row} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lookup_matches_get() {
        let t = DistanceTables::new(64);
        for row in [0, 10, 63] {
            for k in 0..8 {
                assert_eq!(
                    DistanceTables::lookup(t.as_slice(), 64, Group::BOTTOM, row, k),
                    t.get(Group::BOTTOM, row, k)
                );
            }
        }
    }

    #[test]
    fn default_forward_slots_keep_corridor_convention() {
        assert_eq!(default_forward_slots(2), vec![0, 5]);
        assert_eq!(default_forward_slots(4), vec![0, 5, 4, 3]);
    }

    #[test]
    fn with_forward_overrides_slots() {
        let d = DistanceData::rows(16);
        assert_eq!(d.forward, vec![0, 5]);
        let d = d.with_forward(vec![0, 4]);
        assert_eq!(d.dist_ref().forward_k(Group::BOTTOM), 4);
    }

    #[test]
    #[should_panic(expected = "cover every group plane")]
    fn with_forward_rejects_wrong_arity() {
        let _ = DistanceData::rows(16).with_forward(vec![0, 5, 4]);
    }
}
