//! Pre-computed distance tables (the paper's constant-memory distance
//! matrix, §IV.a).
//!
//! For an agent of group *g* standing in row *r*, the paper needs the
//! distance from each of its eight neighbour cells to the agent's target —
//! the far edge of the environment. The distance is measured to the point
//! of the target row directly ahead of the agent, so a lateral offset
//! *does* cost: with vertical distance `d = |target_row − (r + dr)|` and
//! lateral offset `dc`, the table holds `√(d² + dc²)`.
//!
//! This reproduces the strict ordering the paper states for a top agent
//! (§IV.b): Cell #1 (forward, `d−1`) < #2 = #3 (forward diagonals,
//! `√((d−1)²+1)`) < #4 = #5 (lateral, `√(d²+1)`) < #6 (backward, `d+1`)
//! < #7 = #8 (backward diagonals) — and symmetrically for bottom agents.
//!
//! Distances are clamped to a small positive floor so eq. (1)'s
//! `D_min / D_i` and eq. (2)'s `η = 1/D` stay finite for agents standing on
//! the target row itself (the paper requires `D_i ≠ 0`).

use crate::cell::{Group, NEIGHBOR_OFFSETS};

/// Floor applied to all distances (cells); keeps `1/D` finite.
pub const DISTANCE_FLOOR: f32 = 0.5;

/// Per-(group, row, neighbour) distances to target, laid out for constant
/// memory: `[group][row][k]` flattened row-major.
#[derive(Debug, Clone)]
pub struct DistanceTables {
    height: usize,
    /// `2 * height * 8` entries.
    data: Vec<f32>,
}

impl DistanceTables {
    /// Build the tables for an environment of `height` rows.
    pub fn new(height: usize) -> Self {
        assert!(height >= 2, "environment must have at least two rows");
        let mut data = Vec::with_capacity(2 * height * 8);
        for group in Group::BOTH {
            let target = group.target_row(height) as i64;
            for row in 0..height as i64 {
                for (dr, dc) in NEIGHBOR_OFFSETS {
                    let vert = (target - (row + dr)) as f32;
                    let lat = dc as f32;
                    let d = (vert * vert + lat * lat).sqrt();
                    data.push(d.max(DISTANCE_FLOOR));
                }
            }
        }
        Self { height, data }
    }

    /// Distance from the `k`-th neighbour of a group-`g` agent in `row` to
    /// that agent's target.
    #[inline]
    pub fn get(&self, g: Group, row: usize, k: usize) -> f32 {
        debug_assert!(row < self.height && k < 8);
        self.data[(g.index() * self.height + row) * 8 + k]
    }

    /// Minimum over the eight neighbours (eq. (1)'s `D_min`).
    #[inline]
    pub fn min_for(&self, g: Group, row: usize) -> f32 {
        let base = (g.index() * self.height + row) * 8;
        self.data[base..base + 8]
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// The raw flattened table (for upload into a `ConstantBuffer`).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Environment height the tables were built for.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Compute the same value as [`DistanceTables::get`] from the raw slice
    /// (used by kernels that hold only the constant buffer).
    #[inline]
    pub fn lookup(data: &[f32], height: usize, g: Group, row: usize, k: usize) -> f32 {
        data[(g.index() * height + row) * 8 + k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ordering_for_top_agent() {
        let t = DistanceTables::new(480);
        let row = 100; // mid-environment, target row 479, d = 379
        let d: Vec<f32> = (0..8).map(|k| t.get(Group::Top, row, k)).collect();
        // #1 < #2 = #3 < #4 = #5 < #6 < #7 = #8 (0-based indices 0..8)
        assert!(d[0] < d[1]);
        assert!((d[1] - d[2]).abs() < 1e-6);
        assert!(d[2] < d[3]);
        assert!((d[3] - d[4]).abs() < 1e-6);
        assert!(d[4] < d[5]);
        assert!(d[5] < d[6]);
        assert!((d[6] - d[7]).abs() < 1e-6);
    }

    #[test]
    fn paper_ordering_for_bottom_agent_mirrors() {
        let t = DistanceTables::new(480);
        let row = 300; // target row 0
        // For a bottom agent the forward cell is k=5 (#6).
        let d: Vec<f32> = (0..8).map(|k| t.get(Group::Bottom, row, k)).collect();
        assert!(d[5] < d[6]);
        assert!((d[6] - d[7]).abs() < 1e-6);
        assert!(d[6] < d[3]);
        assert!(d[3] < d[0]);
        assert!(d[0] < d[1]);
    }

    #[test]
    fn forward_distance_decrements_per_row() {
        let t = DistanceTables::new(100);
        // Top agent: forward distance from row r is (99 - (r+1)).
        assert!((t.get(Group::Top, 10, 0) - 88.0).abs() < 1e-5);
        assert!((t.get(Group::Top, 97, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn floor_applies_at_target() {
        let t = DistanceTables::new(100);
        // One row short of the target: the forward cell *is* the target
        // (distance zero) → floored to keep 1/D finite.
        assert_eq!(t.get(Group::Top, 98, 0), DISTANCE_FLOOR);
        assert_eq!(t.get(Group::Bottom, 1, 5), DISTANCE_FLOOR);
        assert!(t.as_slice().iter().all(|&d| d >= DISTANCE_FLOOR));
    }

    #[test]
    fn min_is_forward_cell_mid_grid() {
        let t = DistanceTables::new(480);
        assert_eq!(t.min_for(Group::Top, 200), t.get(Group::Top, 200, 0));
        assert_eq!(t.min_for(Group::Bottom, 200), t.get(Group::Bottom, 200, 5));
    }

    #[test]
    fn lookup_matches_get() {
        let t = DistanceTables::new(64);
        for row in [0, 10, 63] {
            for k in 0..8 {
                assert_eq!(
                    DistanceTables::lookup(t.as_slice(), 64, Group::Bottom, row, k),
                    t.get(Group::Bottom, row, k)
                );
            }
        }
    }
}
