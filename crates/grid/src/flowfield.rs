//! Flow-field routing: per-group shortest-path distances to arbitrary
//! target regions around interior obstacles.
//!
//! The paper's constant-memory distance matrix (§IV.a) only encodes "how
//! far is the far edge", which cannot express doorways, pillars, or
//! crossing streams. [`GridDistanceField`] generalises it: a multi-source
//! Dijkstra from each group's target cells over the eight-connected grid
//! (straight steps cost 1, diagonal steps √2 — the same [`MOVE_LEN`]
//! increments the tour kernel accumulates), with obstacle cells
//! impassable. The result is a per-cell *potential*; an agent descending
//! the potential greedily walks a shortest path to its target, and the
//! models consume it through exactly the same `D` slots eq. (1) and
//! eq. (2)'s `η = 1/D` already use. One potential plane is computed per
//! directional group, so any number of intersecting streams (up to
//! [`crate::cell::MAX_GROUPS`]) route independently.
//!
//! Distances are floored at [`DISTANCE_FLOOR`] like the row tables, and
//! walls/unreachable cells hold `f32::MAX` so they sort last and score
//! `η ≈ 0`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::cell::{Group, MAX_GROUPS, MOVE_LEN, NEIGHBOR_OFFSETS};
use crate::distance::{
    default_forward_slots, DistRef, DistanceField, DistanceKind, DISTANCE_FLOOR,
};

/// Sentinel potential for walls and unreachable cells.
pub const UNREACHABLE: f32 = f32::MAX;

/// Per-group grid of (floored) shortest-path distances to the group's
/// target region, laid out `[group][row][col]` for constant memory.
#[derive(Debug, Clone, PartialEq)]
pub struct GridDistanceField {
    height: usize,
    width: usize,
    groups: usize,
    /// Per-group forward neighbour slot (tie-break anchor of `front_k`).
    forward: Vec<u8>,
    /// `groups * height * width` entries.
    data: Vec<f32>,
}

/// Max-heap entry ordered so the *smallest* tentative distance pops first.
struct HeapEntry {
    dist: f32,
    cell: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.cell == other.cell
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on distance (min-heap behaviour); cell id tie-break
        // keeps the ordering total.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.cell.cmp(&self.cell))
    }
}

impl GridDistanceField {
    /// Compute one flow field per group for a `height × width` world.
    ///
    /// `is_wall(r, c)` marks impassable interior cells; `targets[g]` lists
    /// each group's target cells (wall targets are ignored). Forward slots
    /// default to [`default_forward_slots`]; scenario worlds override them
    /// via [`GridDistanceField::with_forward`]. Panics if a group has no
    /// passable target cell — a world nobody can finish is a scenario bug,
    /// not a simulation state.
    pub fn compute(
        height: usize,
        width: usize,
        is_wall: impl Fn(usize, usize) -> bool,
        targets: &[&[(u16, u16)]],
    ) -> Self {
        assert!(height >= 2 && width >= 1, "world too small");
        let groups = targets.len();
        assert!(
            (1..=MAX_GROUPS).contains(&groups),
            "group count {groups} out of range 1..={MAX_GROUPS}"
        );
        let cells = height * width;
        let mut data = vec![UNREACHABLE; groups * cells];
        let wall_mask: Vec<bool> = (0..cells).map(|i| is_wall(i / width, i % width)).collect();
        for g in Group::first_n(groups) {
            let plane = &mut data[g.index() * cells..(g.index() + 1) * cells];
            let mut raw = vec![f32::INFINITY; cells];
            let mut heap = BinaryHeap::new();
            for &(r, c) in targets[g.index()] {
                let (r, c) = (r as usize, c as usize);
                assert!(r < height && c < width, "target ({r},{c}) out of bounds");
                let cell = r * width + c;
                if wall_mask[cell] {
                    continue;
                }
                if raw[cell] > 0.0 {
                    raw[cell] = 0.0;
                    heap.push(HeapEntry {
                        dist: 0.0,
                        cell: cell as u32,
                    });
                }
            }
            assert!(!heap.is_empty(), "group {g:?} has no passable target cell");
            while let Some(HeapEntry { dist, cell }) = heap.pop() {
                let cell = cell as usize;
                if dist > raw[cell] {
                    continue; // stale entry
                }
                let (r, c) = ((cell / width) as i64, (cell % width) as i64);
                for (k, (dr, dc)) in NEIGHBOR_OFFSETS.iter().enumerate() {
                    let (nr, nc) = (r + dr, c + dc);
                    if nr < 0 || nc < 0 || nr as usize >= height || nc as usize >= width {
                        continue;
                    }
                    let ncell = nr as usize * width + nc as usize;
                    if wall_mask[ncell] {
                        continue;
                    }
                    let nd = dist + MOVE_LEN[k];
                    if nd < raw[ncell] {
                        raw[ncell] = nd;
                        heap.push(HeapEntry {
                            dist: nd,
                            cell: ncell as u32,
                        });
                    }
                }
            }
            for (out, (&d, &wall)) in plane.iter_mut().zip(raw.iter().zip(&wall_mask)) {
                *out = if wall || d.is_infinite() {
                    UNREACHABLE
                } else {
                    d.max(DISTANCE_FLOOR)
                };
            }
        }
        Self {
            height,
            width,
            groups,
            forward: default_forward_slots(groups),
            data,
        }
    }

    /// Override the per-group forward slots (from scenario headings).
    pub fn with_forward(mut self, forward: Vec<u8>) -> Self {
        assert_eq!(
            forward.len(),
            self.groups,
            "forward slots must cover every group plane"
        );
        assert!(forward.iter().all(|&k| (k as usize) < 8));
        self.forward = forward;
        self
    }

    /// Potential of cell `(r, c)` for group `g` ([`UNREACHABLE`] for walls
    /// and cut-off cells).
    #[inline]
    pub fn potential(&self, g: Group, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.height && c < self.width && g.index() < self.groups);
        self.data[(g.index() * self.height + r) * self.width + c]
    }

    /// Whether `(r, c)` can reach group `g`'s target.
    #[inline]
    pub fn reachable(&self, g: Group, r: usize, c: usize) -> bool {
        self.potential(g, r, c) < UNREACHABLE
    }

    /// Environment height.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Environment width.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of group planes.
    #[inline]
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// A layout-tagged borrowed view.
    pub fn dist_ref(&self) -> DistRef<'_> {
        DistRef {
            kind: DistanceKind::Grid,
            height: self.height,
            width: self.width,
            groups: self.groups,
            forward: &self.forward,
            data: &self.data,
        }
    }
}

impl DistanceField for GridDistanceField {
    fn kind(&self) -> DistanceKind {
        DistanceKind::Grid
    }

    fn field_height(&self) -> usize {
        self.height
    }

    fn field_width(&self) -> usize {
        self.width
    }

    fn field_groups(&self) -> usize {
        self.groups
    }

    fn forward_slots(&self) -> Vec<u8> {
        self.forward.clone()
    }

    fn flat(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn open(_: usize, _: usize) -> bool {
        false
    }

    fn bottom_edge(height: usize, width: usize) -> Vec<(u16, u16)> {
        (0..width)
            .map(|c| ((height - 1) as u16, c as u16))
            .collect()
    }

    fn top_edge(width: usize) -> Vec<(u16, u16)> {
        (0..width).map(|c| (0u16, c as u16)).collect()
    }

    #[test]
    fn open_corridor_matches_vertical_distance() {
        let (h, w) = (12usize, 7usize);
        let (bot, top) = (bottom_edge(h, w), top_edge(w));
        let f = GridDistanceField::compute(h, w, open, &[&bot, &top]);
        for r in 0..h {
            for c in 0..w {
                // Chebyshev-with-diagonals shortest path straight down.
                let expect = ((h - 1 - r) as f32).max(DISTANCE_FLOOR);
                assert!(
                    (f.potential(Group::TOP, r, c) - expect).abs() < 1e-5,
                    "({r},{c})"
                );
                let expect_b = (r as f32).max(DISTANCE_FLOOR);
                assert!((f.potential(Group::BOTTOM, r, c) - expect_b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn wall_row_with_gap_routes_through_the_gap() {
        // 11 rows, 11 cols, full wall on row 5 except column 5.
        let (h, w) = (11usize, 11usize);
        let wall = |r: usize, c: usize| r == 5 && c != 5;
        let (bot, top) = (bottom_edge(h, w), top_edge(w));
        let f = GridDistanceField::compute(h, w, wall, &[&bot, &top]);
        // Above the wall, far from the gap, the detour dominates the
        // straight-line distance.
        let direct = (h - 1) as f32 - 0.0;
        assert!(f.potential(Group::TOP, 0, 0) > direct);
        // The gap cell itself is passable and reachable.
        assert!(f.reachable(Group::TOP, 5, 5));
        // Wall cells are unreachable sentinels.
        assert_eq!(f.potential(Group::TOP, 5, 0), UNREACHABLE);
        // Monotone descent: from anywhere reachable, some neighbour is
        // strictly closer (or we are at the floor already).
        for r in 0..h {
            for c in 0..w {
                if !f.reachable(Group::TOP, r, c) || f.potential(Group::TOP, r, c) <= 1.0 {
                    continue;
                }
                let here = f.potential(Group::TOP, r, c);
                let best = NEIGHBOR_OFFSETS
                    .iter()
                    .filter_map(|(dr, dc)| {
                        let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                        (nr >= 0 && nc >= 0 && (nr as usize) < h && (nc as usize) < w)
                            .then(|| f.potential(Group::TOP, nr as usize, nc as usize))
                    })
                    .fold(f32::INFINITY, f32::min);
                assert!(best < here, "no descent at ({r},{c})");
            }
        }
    }

    #[test]
    fn enclosed_region_is_unreachable() {
        // A 3×3 box of walls around (5,5) in a 10×10 world.
        let wall = |r: usize, c: usize| {
            (4..=6).contains(&r) && (4..=6).contains(&c) && !(r == 5 && c == 5)
        };
        let (bot, top) = (bottom_edge(10, 10), top_edge(10));
        let f = GridDistanceField::compute(10, 10, wall, &[&bot, &top]);
        assert!(!f.reachable(Group::TOP, 5, 5));
        assert!(f.reachable(Group::TOP, 3, 3));
    }

    #[test]
    fn diagonal_steps_cost_sqrt2() {
        // Single target cell at the corner of an open 8×8 world: the
        // opposite corner is 7 diagonal steps away.
        let target = [(7u16, 7u16)];
        let t2 = [(0u16, 0u16)];
        let f = GridDistanceField::compute(8, 8, open, &[&target, &t2]);
        let expect = 7.0 * std::f32::consts::SQRT_2;
        assert!((f.potential(Group::TOP, 0, 0) - expect).abs() < 1e-4);
    }

    #[test]
    fn four_group_planes_route_independently() {
        // Four orthogonal streams on an open 9×9 plaza.
        let (h, w) = (9usize, 9usize);
        let bot = bottom_edge(h, w);
        let top = top_edge(w);
        let right: Vec<(u16, u16)> = (0..h).map(|r| (r as u16, (w - 1) as u16)).collect();
        let left: Vec<(u16, u16)> = (0..h).map(|r| (r as u16, 0u16)).collect();
        let f = GridDistanceField::compute(h, w, open, &[&bot, &top, &right, &left]);
        assert_eq!(f.groups(), 4);
        // Group 2 heads right: its potential falls with the column.
        let g2 = Group::new(2);
        assert!(f.potential(g2, 4, 1) > f.potential(g2, 4, 7));
        assert!((f.potential(g2, 4, 0) - 8.0).abs() < 1e-5);
        // Group 3 heads left.
        let g3 = Group::new(3);
        assert!(f.potential(g3, 4, 7) > f.potential(g3, 4, 1));
        // Row-routed planes are untouched by the extra groups.
        assert!((f.potential(Group::TOP, 0, 4) - 8.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "no passable target")]
    fn all_wall_targets_rejected() {
        let wall = |r: usize, _: usize| r == 9;
        let (bot, top) = (bottom_edge(10, 10), top_edge(10));
        let _ = GridDistanceField::compute(10, 10, wall, &[&bot, &top]);
    }

    #[test]
    fn dist_ref_reads_neighbours() {
        let (h, w) = (6usize, 6usize);
        let (bot, top) = (bottom_edge(h, w), top_edge(w));
        let f = GridDistanceField::compute(h, w, open, &[&bot, &top]);
        let v = f.dist_ref();
        // Neighbour k=0 of (2,3) is (3,3): potential h-1-3 = 2.
        assert!((v.neighbor(Group::TOP, 2, 3, 0) - 2.0).abs() < 1e-6);
        // Out of bounds reads as MAX.
        assert_eq!(v.neighbor(Group::BOTTOM, 0, 0, 5), f32::MAX);
        // Front cell descends the potential.
        assert_eq!(v.front_k(Group::TOP, 2, 3), 0);
        assert_eq!(v.front_k(Group::BOTTOM, 2, 3), 5);
    }

    #[test]
    fn forward_override_steers_tie_breaks() {
        // An open plaza with a single-corner target for group 0: from the
        // far corner the argmin is unique, but from a potential plateau the
        // forward slot anchors the tie-break.
        let (h, w) = (6usize, 6usize);
        let right: Vec<(u16, u16)> = (0..h).map(|r| (r as u16, (w - 1) as u16)).collect();
        let left: Vec<(u16, u16)> = (0..h).map(|r| (r as u16, 0u16)).collect();
        let f = GridDistanceField::compute(h, w, open, &[&right, &left]).with_forward(vec![4, 3]);
        let v = f.dist_ref();
        assert_eq!(v.forward_k(Group::TOP), 4);
        assert_eq!(v.forward_k(Group::BOTTOM), 3);
        // Mid-grid, the rightward group's front cell is its forward slot.
        assert_eq!(v.front_k(Group::TOP, 3, 2), 4);
        assert_eq!(v.front_k(Group::BOTTOM, 3, 2), 3);
    }
}
