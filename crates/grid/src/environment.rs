//! The assembled simulation environment: `mat`, index matrix, property
//! table, and the scenario geometry (the paper's data-preparation output).

use std::sync::Arc;

use philox::StreamRng;

use crate::cell::{Group, CELL_EMPTY, CELL_WALL, MAX_GROUPS};
use crate::matrix::Matrix;
use crate::placement::place_confined;
use crate::property::PropertyTable;

/// Scenario geometry and population for the paper's classic two-group
/// corridor (scenario worlds describe themselves through
/// `pedsim-scenario` instead).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvConfig {
    /// Environment width in cells (the paper uses 480).
    pub width: usize,
    /// Environment height in cells (480).
    pub height: usize,
    /// Pedestrians per group (half the total population).
    pub agents_per_side: usize,
    /// Rows of the spawn band at each edge. `None` derives it from
    /// [`EnvConfig::spawn_fill`].
    pub spawn_rows: Option<usize>,
    /// Target occupancy of the spawn band when deriving `spawn_rows`.
    /// The paper's Figure 2a example has 29 agents in a 3×16 band ≈ 0.6.
    pub spawn_fill: f64,
    /// Placement seed (stream 0/1 of this seed drive the two groups).
    pub seed: u64,
}

impl EnvConfig {
    /// The paper's evaluation geometry: 480×480 cells, spawn bands derived
    /// at 0.6 fill. `total_agents` is split evenly between the groups.
    pub fn paper(total_agents: usize) -> Self {
        Self {
            width: 480,
            height: 480,
            agents_per_side: total_agents / 2,
            spawn_rows: None,
            spawn_fill: 0.6,
            seed: 0,
        }
    }

    /// A reduced geometry for tests and examples.
    pub fn small(width: usize, height: usize, agents_per_side: usize) -> Self {
        Self {
            width,
            height,
            agents_per_side,
            spawn_rows: None,
            spawn_fill: 0.6,
            seed: 0,
        }
    }

    /// Set the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explicit spawn-band rows (builder style).
    pub fn with_spawn_rows(mut self, rows: usize) -> Self {
        self.spawn_rows = Some(rows);
        self
    }

    /// The effective spawn-band rows: enough rows that the band sits at
    /// roughly [`EnvConfig::spawn_fill`] occupancy (rounded to the nearest
    /// row count), but never fewer than the agents strictly require.
    pub fn effective_spawn_rows(&self) -> usize {
        self.spawn_rows.unwrap_or_else(|| {
            let by_fill =
                (self.agents_per_side as f64 / (self.width as f64 * self.spawn_fill)).round();
            let minimum = self.agents_per_side.div_ceil(self.width);
            (by_fill as usize).max(minimum).max(1)
        })
    }

    /// Total population.
    pub fn total_agents(&self) -> usize {
        self.agents_per_side * 2
    }
}

/// A group's pool of recyclable property slots. An ordered set so both
/// engines share one deterministic reuse rule — `pop_first()` always
/// yields the **smallest** free slot in O(log n) (a sorted `Vec` would
/// memmove kilobytes per despawn at paper scale) — which is part of the
/// cross-engine bit-identity contract for open-boundary worlds.
pub type FreeSlots = std::collections::BTreeSet<u32>;

/// The environment state: cell labels, agent indices, agent properties.
#[derive(Debug, Clone, PartialEq)]
pub struct Environment {
    /// Cell labels (`mat` in the paper): 0 empty, `g + 1` a group-`g`
    /// pedestrian, 255 interior wall.
    pub mat: Matrix<u8>,
    /// Agent index per cell (0 = none); indexes the property table.
    pub index: Matrix<u32>,
    /// Per-agent records.
    pub props: PropertyTable,
    /// Rows of each spawn band (the classic corridor layout; scenario
    /// worlds record their spawn extent here for reporting only).
    pub spawn_rows: usize,
    /// Per-group populations. Agent indices are assigned contiguously and
    /// 1-based: group `g` owns `1 + Σ sizes[..g] ..= Σ sizes[..=g]` (the
    /// paper's single index sequence over both groups, Figure 2b,
    /// generalised).
    pub group_sizes: Vec<usize>,
    /// Seed the environment was built with.
    pub seed: u64,
    /// Per-cell target-region bitmask ([`Group::target_bit`]); `None` means
    /// the classic corridor convention "crossed = reached the opposite
    /// spawn band".
    pub targets: Option<Arc<Matrix<u8>>>,
    /// Per-slot liveness (index 0 is the sentinel and always dead). Closed
    /// worlds keep every slot alive for the whole run; open-boundary worlds
    /// toggle flags through [`Environment::despawn`] /
    /// [`Environment::spawn_from_free`].
    pub alive: Vec<bool>,
    /// Recyclable property slots per group; `pop_first()` always yields
    /// the smallest free slot — the deterministic recycling order both
    /// engines share.
    pub free: Vec<FreeSlots>,
    /// Live agents currently on the grid (≤ the slot capacity
    /// [`Environment::total_agents`]).
    pub live: usize,
    /// Agent→cell position index: `pos[i] == row[i]·width + col[i]` for
    /// **every** slot, dead ones included (a dead slot keeps the linear
    /// position it last stood on, mirroring how `props.row`/`props.col`
    /// are left in place on despawn). This is the sparse iteration
    /// surface: the agent-centric stages walk live slots and read their
    /// cells through `pos` instead of sweeping the grid, so the invariant
    /// `index[pos[i]] == i` for live `i` is part of
    /// [`Environment::check_consistency`].
    pub pos: Vec<u32>,
}

impl Environment {
    /// Build and populate a classic two-group corridor.
    ///
    /// Top agents receive indices `1..=per_side`, bottom agents
    /// `per_side+1..=2·per_side` (the paper's single index sequence over
    /// both groups, Figure 2b).
    pub fn new(cfg: &EnvConfig) -> Self {
        assert!(cfg.width >= 2 && cfg.height >= 4, "environment too small");
        let spawn_rows = cfg.effective_spawn_rows();
        assert!(
            spawn_rows * 2 <= cfg.height,
            "spawn bands overlap: {spawn_rows} rows each in height {}",
            cfg.height
        );
        let n = cfg.agents_per_side;
        let mut mat = Matrix::filled(cfg.height, cfg.width, CELL_EMPTY);
        let mut index = Matrix::filled(cfg.height, cfg.width, 0u32);
        let mut props = PropertyTable::new(2 * n);
        // Dedicated placement streams, far away from the per-cell streams
        // the kernels use (which are < width·height): group g draws from
        // stream u64::MAX - 1 - g.
        let mut rng_top = StreamRng::new(cfg.seed, u64::MAX - 1);
        let mut rng_bot = StreamRng::new(cfg.seed, u64::MAX - 2);
        place_confined(
            &mut mat,
            &mut index,
            &mut props,
            Group::TOP,
            n,
            spawn_rows,
            1,
            &mut rng_top,
        );
        place_confined(
            &mut mat,
            &mut index,
            &mut props,
            Group::BOTTOM,
            n,
            spawn_rows,
            (n + 1) as u32,
            &mut rng_bot,
        );
        let mut alive = vec![true; 2 * n + 1];
        alive[0] = false;
        let pos = Self::derive_pos(&props, cfg.width);
        Self {
            mat,
            index,
            props,
            spawn_rows,
            group_sizes: vec![n, n],
            seed: cfg.seed,
            targets: None,
            alive,
            free: vec![FreeSlots::new(), FreeSlots::new()],
            live: 2 * n,
            pos,
        }
    }

    /// Derive the agent→cell position index from a property table: one
    /// `row·width + col` entry per slot (slot 0 is the sentinel and maps
    /// to cell 0). Constructors use this once; every later `row`/`col`
    /// write maintains the index in place.
    pub fn derive_pos(props: &PropertyTable, width: usize) -> Vec<u32> {
        (0..props.row.len())
            .map(|i| props.row[i] as u32 * width as u32 + props.col[i] as u32)
            .collect()
    }

    /// Environment width.
    #[inline]
    pub fn width(&self) -> usize {
        self.mat.width()
    }

    /// Environment height.
    #[inline]
    pub fn height(&self) -> usize {
        self.mat.height()
    }

    /// Number of directional groups.
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.group_sizes.len()
    }

    /// Total agents.
    #[inline]
    pub fn total_agents(&self) -> usize {
        self.group_sizes.iter().sum()
    }

    /// First (1-based) agent index of group `g`.
    #[inline]
    pub fn group_start(&self, g: Group) -> usize {
        1 + self.group_sizes[..g.index()].iter().sum::<usize>()
    }

    /// Population of group `g`.
    #[inline]
    pub fn group_size(&self, g: Group) -> usize {
        self.group_sizes[g.index()]
    }

    /// The group of agent `idx` (by the index-range convention).
    #[inline]
    pub fn group_of(&self, idx: usize) -> Group {
        debug_assert!(idx >= 1 && idx <= self.total_agents());
        let mut end = 0usize;
        for (g, &size) in self.group_sizes.iter().enumerate() {
            end += size;
            if idx <= end {
                return Group::new(g);
            }
        }
        unreachable!("agent index {idx} beyond every group range")
    }

    /// Whether a group-`g` agent standing at `(row, col)` has crossed:
    /// reached the group's target region when one is defined, else the
    /// *opposite* spawn band (the paper's "14th row in the opposite end"
    /// example — the first row of the far band). The band fallback is a
    /// two-group corridor notion; worlds with more groups must carry a
    /// target mask.
    #[inline]
    pub fn has_crossed(&self, g: Group, row: usize, col: usize) -> bool {
        match &self.targets {
            Some(mask) => mask.get(row, col) & g.target_bit() != 0,
            None => {
                assert!(
                    self.n_groups() == 2,
                    "the row-band crossing fallback is two-group only; \
                     multi-group worlds must carry a target mask"
                );
                if g == Group::TOP {
                    row >= self.height() - self.spawn_rows
                } else {
                    row < self.spawn_rows
                }
            }
        }
    }

    /// Count agents of `g` currently inside their target region.
    pub fn crossed_count(&self, g: Group) -> usize {
        (1..=self.total_agents())
            .filter(|&i| self.props.id[i] == g.label())
            .filter(|&i| {
                self.has_crossed(g, self.props.row[i] as usize, self.props.col[i] as usize)
            })
            .count()
    }

    /// Live agents currently on the grid.
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live
    }

    /// Whether slot `idx` currently holds a live agent.
    #[inline]
    pub fn is_alive(&self, idx: usize) -> bool {
        self.alive[idx]
    }

    /// Remove the live agent in slot `idx` (group `g`) from the grid and
    /// recycle its property slot: the cell it stood on becomes empty, the
    /// slot joins the group's free pool (the smallest free slot is reused
    /// first), and the live count drops. The slot's
    /// row/col/id records are left in place — dead slots are simply not on
    /// the grid, which is how both engines' kernels already treat them.
    pub fn despawn(&mut self, g: Group, idx: usize) {
        debug_assert!(self.alive[idx], "despawning a dead slot {idx}");
        debug_assert_eq!(self.group_of(idx), g, "slot {idx} is not in group {g:?}");
        let (r, c) = self.props.position(idx);
        debug_assert_eq!(self.index.get(r as usize, c as usize), idx as u32);
        self.mat.set(r as usize, c as usize, CELL_EMPTY);
        self.index.set(r as usize, c as usize, 0);
        self.alive[idx] = false;
        self.live -= 1;
        self.free[g.index()].insert(idx as u32);
    }

    /// Place a recycled (or never-used) slot of group `g` at the empty cell
    /// `(r, c)`, returning the slot index, or `None` when the group has no
    /// free slot. The smallest free slot is always chosen, so the spawn
    /// order is deterministic and identical on both engines.
    pub fn spawn_from_free(&mut self, g: Group, r: u16, c: u16) -> Option<u32> {
        debug_assert_eq!(self.mat.get(r as usize, c as usize), CELL_EMPTY);
        let idx = self.free[g.index()].pop_first()?;
        let w = self.width() as u32;
        self.mat.set(r as usize, c as usize, g.label());
        self.index.set(r as usize, c as usize, idx);
        self.props.place(idx as usize, g.label(), r, c);
        self.pos[idx as usize] = r as u32 * w + c as u32;
        self.alive[idx as usize] = true;
        self.live += 1;
        Some(idx)
    }

    /// Verify the three matrices tell one consistent story; returns a
    /// description of the first inconsistency.
    pub fn check_consistency(&self) -> Result<(), String> {
        if self.n_groups() > MAX_GROUPS {
            return Err(format!("{} groups exceed MAX_GROUPS", self.n_groups()));
        }
        if self.alive.len() != self.total_agents() + 1 {
            return Err(format!(
                "liveness table holds {} slots for {} agents",
                self.alive.len(),
                self.total_agents() + 1
            ));
        }
        if self.free.len() != self.n_groups() {
            return Err(format!(
                "{} free lists for {} groups",
                self.free.len(),
                self.n_groups()
            ));
        }
        if self.pos.len() != self.total_agents() + 1 {
            return Err(format!(
                "position index holds {} slots for {} agents",
                self.pos.len(),
                self.total_agents() + 1
            ));
        }
        let w = self.width() as u32;
        for i in 0..=self.total_agents() {
            let expect = self.props.row[i] as u32 * w + self.props.col[i] as u32;
            if self.pos[i] != expect {
                return Err(format!(
                    "slot {i}: position index {} != row·w+col {expect}",
                    self.pos[i]
                ));
            }
            if i > 0 && self.alive[i] {
                let (r, c) = (self.pos[i] / w, self.pos[i] % w);
                if self.index.get(r as usize, c as usize) != i as u32 {
                    return Err(format!(
                        "live slot {i}: index[pos] = {} at ({r},{c})",
                        self.index.get(r as usize, c as usize)
                    ));
                }
            }
        }
        let mut seen = vec![false; self.total_agents() + 1];
        for (r, c, v) in self.index.iter_cells() {
            let label = self.mat.get(r, c);
            if v == 0 {
                if label != CELL_EMPTY && label != CELL_WALL {
                    return Err(format!("cell ({r},{c}) labelled {label} but index 0"));
                }
                continue;
            }
            let idx = v as usize;
            if idx > self.total_agents() {
                return Err(format!("cell ({r},{c}) holds out-of-range index {idx}"));
            }
            if seen[idx] {
                return Err(format!("agent {idx} appears in two cells"));
            }
            if !self.alive[idx] {
                return Err(format!("dead slot {idx} occupies cell ({r},{c})"));
            }
            seen[idx] = true;
            let in_range = Group::from_label(label)
                .map(|g| g.index() < self.n_groups())
                .unwrap_or(false);
            if !in_range {
                return Err(format!("cell ({r},{c}) indexed but labelled {label}"));
            }
            if self.props.id[idx] != label {
                return Err(format!(
                    "agent {idx}: property id {} != mat label {label}",
                    self.props.id[idx]
                ));
            }
            if self.props.position(idx) != (r as u16, c as u16) {
                return Err(format!(
                    "agent {idx}: property position {:?} != cell ({r},{c})",
                    self.props.position(idx)
                ));
            }
            if self.group_of(idx).label() != label {
                return Err(format!("agent {idx}: index range disagrees with label"));
            }
        }
        if let Some(missing) = (1..=self.total_agents()).find(|&i| self.alive[i] && !seen[i]) {
            return Err(format!(
                "live agent {missing} not present in the index matrix"
            ));
        }
        if self.live != self.alive.iter().filter(|&&a| a).count() {
            return Err(format!(
                "live count {} disagrees with the liveness table",
                self.live
            ));
        }
        // The free pools are exactly the dead slots, each in its own
        // group's pool (the set ordering makes smallest-first reuse
        // canonical, so there is no order to verify).
        let mut free_seen = vec![false; self.total_agents() + 1];
        for (g, list) in self.free.iter().enumerate() {
            for &slot in list {
                let idx = slot as usize;
                if idx == 0 || idx > self.total_agents() {
                    return Err(format!("free list holds out-of-range slot {idx}"));
                }
                if self.alive[idx] {
                    return Err(format!("live slot {idx} listed as free"));
                }
                if self.group_of(idx).index() != g {
                    return Err(format!("slot {idx} in the wrong group's free list ({g})"));
                }
                if free_seen[idx] {
                    return Err(format!("slot {idx} listed as free twice"));
                }
                free_seen[idx] = true;
            }
        }
        if let Some(orphan) = (1..=self.total_agents()).find(|&i| !self.alive[i] && !free_seen[i]) {
            return Err(format!("dead slot {orphan} is in no free list"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CELL_BOTTOM, CELL_TOP};

    #[test]
    fn paper_config_geometry() {
        let cfg = EnvConfig::paper(2560);
        assert_eq!(cfg.width, 480);
        assert_eq!(cfg.agents_per_side, 1280);
        // 1280 agents at 0.6 fill of 480-wide rows → round(4.44) = 4 rows.
        assert_eq!(cfg.effective_spawn_rows(), 4);
    }

    #[test]
    fn figure_2a_spawn_rows() {
        // The paper's 16×16 sample with 29 agents per side in 3 rows.
        let cfg = EnvConfig::small(16, 16, 29);
        assert_eq!(cfg.effective_spawn_rows(), 3);
    }

    #[test]
    fn build_is_consistent() {
        let env = Environment::new(&EnvConfig::small(32, 32, 40).with_seed(11));
        env.check_consistency().expect("consistent");
        assert_eq!(env.mat.count(CELL_TOP), 40);
        assert_eq!(env.mat.count(CELL_BOTTOM), 40);
        assert_eq!(env.n_groups(), 2);
    }

    #[test]
    fn group_index_ranges() {
        let env = Environment::new(&EnvConfig::small(32, 32, 10));
        assert_eq!(env.group_of(1), Group::TOP);
        assert_eq!(env.group_of(10), Group::TOP);
        assert_eq!(env.group_of(11), Group::BOTTOM);
        assert_eq!(env.group_of(20), Group::BOTTOM);
        assert_eq!(env.group_start(Group::TOP), 1);
        assert_eq!(env.group_start(Group::BOTTOM), 11);
    }

    #[test]
    fn asymmetric_group_ranges() {
        // Hand-build an environment with uneven groups: 3 + 7 agents.
        let mut env = Environment::new(&EnvConfig::small(16, 16, 5));
        env.group_sizes = vec![3, 7];
        assert_eq!(env.total_agents(), 10);
        assert_eq!(env.group_of(3), Group::TOP);
        assert_eq!(env.group_of(4), Group::BOTTOM);
        assert_eq!(env.group_of(10), Group::BOTTOM);
        assert_eq!(env.group_start(Group::BOTTOM), 4);
        assert_eq!(env.group_size(Group::BOTTOM), 7);
    }

    #[test]
    fn crossing_line_is_opposite_band() {
        let env = Environment::new(&EnvConfig::small(16, 16, 29)); // 3 spawn rows
        assert!(env.has_crossed(Group::TOP, 13, 0));
        assert!(!env.has_crossed(Group::TOP, 12, 0));
        assert!(env.has_crossed(Group::BOTTOM, 2, 5));
        assert!(!env.has_crossed(Group::BOTTOM, 3, 5));
        // Nobody crossed at t=0.
        assert_eq!(env.crossed_count(Group::TOP), 0);
        assert_eq!(env.crossed_count(Group::BOTTOM), 0);
    }

    #[test]
    fn target_mask_overrides_band_convention() {
        use std::sync::Arc;
        let mut env = Environment::new(&EnvConfig::small(16, 16, 10));
        let mut mask = Matrix::filled(16, 16, 0u8);
        // Top group's target: a single doorway cell mid-grid.
        mask.set(8, 8, Group::TOP.target_bit());
        mask.set(1, 1, Group::BOTTOM.target_bit());
        env.targets = Some(Arc::new(mask));
        assert!(env.has_crossed(Group::TOP, 8, 8));
        assert!(!env.has_crossed(Group::TOP, 15, 0)); // far band no longer counts
        assert!(env.has_crossed(Group::BOTTOM, 1, 1));
        assert!(!env.has_crossed(Group::BOTTOM, 8, 8)); // other group's bit
    }

    #[test]
    #[should_panic(expected = "two-group only")]
    fn band_fallback_rejects_multi_group_worlds() {
        let mut env = Environment::new(&EnvConfig::small(16, 16, 6));
        env.group_sizes = vec![4, 4, 4];
        let _ = env.has_crossed(Group::new(2), 0, 0);
    }

    #[test]
    fn walls_are_consistent_with_index_zero() {
        let mut env = Environment::new(&EnvConfig::small(16, 16, 10));
        env.mat.set(8, 8, crate::cell::CELL_WALL);
        env.check_consistency().expect("walls carry index 0");
        // But a wall with a stale index entry is corruption.
        env.index.set(8, 8, 3);
        assert!(env.check_consistency().is_err());
    }

    #[test]
    fn despawn_and_spawn_recycle_slots_smallest_first() {
        let mut env = Environment::new(&EnvConfig::small(16, 16, 3));
        assert_eq!(env.live_count(), 6);
        // Drain two top agents (slots 1 and 2).
        for idx in [2usize, 1] {
            env.despawn(Group::TOP, idx);
        }
        assert_eq!(env.live_count(), 4);
        assert!(!env.is_alive(1) && !env.is_alive(2));
        // The pool is ordered: the smallest slot pops first.
        assert_eq!(env.free[0].iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        env.check_consistency().expect("consistent after despawn");
        // Their cells emptied.
        let (r, c) = env.props.position(1);
        assert_eq!(env.mat.get(r as usize, c as usize), CELL_EMPTY);
        // Spawn reuses slot 1 first, at the requested cell.
        let idx = env.spawn_from_free(Group::TOP, 8, 8).expect("slot free");
        assert_eq!(idx, 1);
        assert_eq!(env.mat.get(8, 8), CELL_TOP);
        assert_eq!(env.index.get(8, 8), 1);
        assert_eq!(env.props.position(1), (8, 8));
        assert!(env.is_alive(1));
        assert_eq!(env.live_count(), 5);
        env.check_consistency().expect("consistent after spawn");
        // One more spawn drains the pool; the next returns None.
        assert_eq!(env.spawn_from_free(Group::TOP, 9, 9), Some(2));
        assert_eq!(env.spawn_from_free(Group::TOP, 10, 10), None);
    }

    #[test]
    fn consistency_rejects_lifecycle_corruption() {
        let mut env = Environment::new(&EnvConfig::small(16, 16, 3));
        // A dead slot still sitting on the grid is corruption.
        env.alive[1] = false;
        env.free[0].insert(1);
        assert!(env
            .check_consistency()
            .unwrap_err()
            .contains("dead slot 1 occupies"));
        // A live slot listed as free is corruption.
        let mut env = Environment::new(&EnvConfig::small(16, 16, 3));
        env.free[1].insert(4);
        assert!(env
            .check_consistency()
            .unwrap_err()
            .contains("live slot 4 listed as free"));
        // A despawned slot missing from every free list is corruption.
        let mut env = Environment::new(&EnvConfig::small(16, 16, 3));
        env.despawn(Group::TOP, 1);
        env.free[0].clear();
        assert!(env
            .check_consistency()
            .unwrap_err()
            .contains("in no free list"));
    }

    #[test]
    fn seeds_differ() {
        let a = Environment::new(&EnvConfig::small(32, 32, 40).with_seed(1));
        let b = Environment::new(&EnvConfig::small(32, 32, 40).with_seed(2));
        assert_ne!(a.mat, b.mat);
        let a2 = Environment::new(&EnvConfig::small(32, 32, 40).with_seed(1));
        assert_eq!(a.mat, a2.mat);
    }

    #[test]
    fn consistency_detects_corruption() {
        let mut env = Environment::new(&EnvConfig::small(32, 32, 5));
        // Clobber one agent's label.
        let (r, c) = env.props.position(1);
        env.mat.set(r as usize, c as usize, CELL_BOTTOM);
        assert!(env.check_consistency().is_err());
    }
}
