//! # pedsim-grid — the simulation environment substrate
//!
//! Everything the paper's *data preparation stage* (§IV.a) builds, as plain
//! host data structures:
//!
//! * [`matrix::Matrix`] — the row-major 2-D container behind the
//!   environment (`mat`), index, and pheromone matrices;
//! * [`cell`] — cell labels (empty / per-group / wall), directional groups
//!   (up to [`cell::MAX_GROUPS`]), headings, and the paper's Figure-1
//!   neighbourhood numbering;
//! * [`property::PropertyTable`] — the per-agent record of the paper's
//!   Table I (ID, ROW, COLUMN, FUTURE ROW, FUTURE COLUMN, FRONT CELL) with
//!   the 0th sentinel row, stored struct-of-arrays so each kernel touches
//!   disjoint fields;
//! * [`scan::ScanMatrix`] — the `(N+1)×8` scan matrix holding eq. (1)
//!   values (LEM) or eq. (2) numerators (ACO);
//! * [`distance::DistanceTables`] — the pre-computed constant-memory
//!   distance and move-length tables, behind the [`distance::DistanceField`]
//!   abstraction;
//! * [`flowfield::GridDistanceField`] — per-group Dijkstra flow fields for
//!   worlds with interior obstacles and arbitrary target regions;
//! * [`pheromone::PheromoneField`] — the per-group pheromone matrices;
//! * [`placement`] / [`environment`] — random confined placement and the
//!   assembled [`environment::Environment`].

#![warn(missing_docs)]

pub mod cell;
pub mod distance;
pub mod environment;
pub mod flowfield;
pub mod matrix;
pub mod pheromone;
pub mod placement;
pub mod property;
pub mod scan;

pub use cell::{
    Group, Heading, CELL_BOTTOM, CELL_EMPTY, CELL_TOP, CELL_WALL, MAX_GROUPS, MOVE_LEN,
    NEIGHBOR_OFFSETS,
};
pub use distance::{DistRef, DistanceData, DistanceField, DistanceKind, DistanceTables};
pub use environment::{EnvConfig, Environment};
pub use flowfield::GridDistanceField;
pub use matrix::Matrix;
pub use pheromone::PheromoneField;
pub use placement::place_in_cells;
pub use property::{PropertyTable, NO_FUTURE};
pub use scan::ScanMatrix;
