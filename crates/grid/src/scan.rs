//! The scan matrix (§IV.a): one row per agent plus the 0th scratch row.
//!
//! For LEM the row holds the *sorted* candidate list the initial-calculation
//! kernel produces — `(distance, neighbour index)` pairs in ascending
//! distance order, invalid slots at the tail. For ACO the row holds the
//! eq. (2) numerator for each neighbour `k`, zero for unavailable cells.
//!
//! The paper gives the matrix `N + 1` rows so threads on empty cells can
//! dump their (ignored) results into row 0 instead of diverging; the same
//! row-0 convention is kept.

/// Neighbour-index sentinel for an invalid scan slot.
pub const SCAN_INVALID: u8 = u8::MAX;

/// `(N+1) × 8` scan values plus the parallel neighbour-index matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanMatrix {
    /// Scan values, row-major, 8 per row.
    pub vals: Vec<f32>,
    /// Neighbour index (0–7) per slot; [`SCAN_INVALID`] marks unused slots.
    pub idxs: Vec<u8>,
    rows: usize,
}

impl ScanMatrix {
    /// A scan matrix for `n_agents` agents.
    pub fn new(n_agents: usize) -> Self {
        let rows = n_agents + 1;
        Self {
            vals: vec![0.0; rows * 8],
            idxs: vec![SCAN_INVALID; rows * 8],
            rows,
        }
    }

    /// Rows including the scratch row.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reset every slot (the supporting kernel's job, §IV.e).
    pub fn clear(&mut self) {
        self.vals.fill(0.0);
        self.idxs.fill(SCAN_INVALID);
    }

    /// The 8 values of agent `idx`'s row.
    #[inline]
    pub fn row_vals(&self, idx: usize) -> &[f32] {
        &self.vals[idx * 8..idx * 8 + 8]
    }

    /// The 8 neighbour indices of agent `idx`'s row.
    #[inline]
    pub fn row_idxs(&self, idx: usize) -> &[u8] {
        &self.idxs[idx * 8..idx * 8 + 8]
    }

    /// Write slot `slot` of agent `idx`'s row.
    #[inline]
    pub fn set(&mut self, idx: usize, slot: usize, val: f32, nbr: u8) {
        debug_assert!(slot < 8);
        self.vals[idx * 8 + slot] = val;
        self.idxs[idx * 8 + slot] = nbr;
    }
}

/// Per-agent accumulated tour lengths (`N + 1` entries, row 0 scratch) —
/// the paper's tour matrix, feeding eq. (5)'s `1/L_k` deposit.
#[derive(Debug, Clone, PartialEq)]
pub struct TourLengths {
    /// Accumulated Euclidean path length per agent.
    pub len: Vec<f32>,
}

impl TourLengths {
    /// Zeroed tour lengths for `n_agents`.
    pub fn new(n_agents: usize) -> Self {
        Self {
            len: vec![0.0; n_agents + 1],
        }
    }

    /// Accumulated length of agent `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> f32 {
        self.len[idx]
    }

    /// Add a step of `d` to agent `idx`.
    #[inline]
    pub fn add(&mut self, idx: usize, d: f32) {
        self.len[idx] += d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_scratch() {
        let s = ScanMatrix::new(5);
        assert_eq!(s.rows(), 6);
        assert_eq!(s.row_vals(0), &[0.0; 8]);
        assert!(s.row_idxs(3).iter().all(|&i| i == SCAN_INVALID));
    }

    #[test]
    fn set_and_clear() {
        let mut s = ScanMatrix::new(2);
        s.set(1, 0, 3.5, 4);
        assert_eq!(s.row_vals(1)[0], 3.5);
        assert_eq!(s.row_idxs(1)[0], 4);
        s.clear();
        assert_eq!(s.row_vals(1)[0], 0.0);
        assert_eq!(s.row_idxs(1)[0], SCAN_INVALID);
    }

    #[test]
    fn tour_accumulates() {
        let mut t = TourLengths::new(3);
        t.add(2, 1.0);
        t.add(2, std::f32::consts::SQRT_2);
        assert!((t.get(2) - 2.4142135).abs() < 1e-6);
        assert_eq!(t.get(1), 0.0);
    }
}
