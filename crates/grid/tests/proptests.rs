//! Property-based tests for the environment substrate.

use pedsim_grid::cell::{Group, CELL_BOTTOM, CELL_TOP};
use pedsim_grid::{DistanceTables, EnvConfig, Environment, Matrix, PheromoneField};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Any buildable scenario is internally consistent and has the exact
    /// requested population confined to its bands.
    #[test]
    fn environments_build_consistent(
        width in 8usize..80,
        height in 8usize..80,
        seed in any::<u64>(),
        fill in 1usize..100,
    ) {
        // Population that always fits: ≤ 40 % of a half-grid band budget.
        let per_side = (width * (height / 2) * fill / 250).max(1);
        let cfg = EnvConfig::small(width, height, per_side).with_seed(seed);
        prop_assume!(cfg.effective_spawn_rows() * 2 <= height);
        let env = Environment::new(&cfg);
        prop_assert!(env.check_consistency().is_ok());
        prop_assert_eq!(env.mat.count(CELL_TOP), per_side);
        prop_assert_eq!(env.mat.count(CELL_BOTTOM), per_side);
        // Bands at the right edges.
        for (r, _, v) in env.mat.iter_cells() {
            if v == CELL_TOP {
                prop_assert!(r < env.spawn_rows);
            } else if v == CELL_BOTTOM {
                prop_assert!(r >= height - env.spawn_rows);
            }
        }
        // Placement is seed-deterministic.
        let env2 = Environment::new(&cfg);
        prop_assert_eq!(env.mat, env2.mat);
    }

    /// Distance tables: forward strictly dominates mid-grid, floors hold,
    /// and group symmetry (top at row r ≡ bottom at row H−1−r).
    #[test]
    fn distance_tables_symmetry(height in 8usize..200, row in 0usize..200) {
        prop_assume!(row < height);
        let t = DistanceTables::new(height);
        let mirror = height - 1 - row;
        for k in 0..8 {
            // Mirror a neighbour offset vertically: (dr,dc) → (−dr,dc),
            // which permutes k: 0↔5, 1↔6, 2↔7, 3↔3, 4↔4.
            let mk = match k {
                0 => 5,
                1 => 6,
                2 => 7,
                5 => 0,
                6 => 1,
                7 => 2,
                other => other,
            };
            let a = t.get(Group::TOP, row, k);
            let b = t.get(Group::BOTTOM, mirror, mk);
            prop_assert!((a - b).abs() < 1e-4, "k={k} mk={mk} a={a} b={b}");
        }
    }

    /// Pheromone evaporation decays monotonically to the floor and deposit
    /// adds exactly the requested amount.
    #[test]
    fn pheromone_dynamics(
        tau0 in 0.01f32..1.0,
        rho in 0.0f32..1.0,
        deposit in 0.0f32..10.0,
        steps in 1usize..200,
    ) {
        let mut p = PheromoneField::new(4, 4, tau0);
        p.deposit(Group::TOP, 1, 1, deposit);
        let mut last = p.of(Group::TOP).get(1, 1);
        prop_assert!((last - (tau0 + deposit)).abs() < 1e-5);
        for _ in 0..steps {
            p.evaporate(rho);
            let now = p.of(Group::TOP).get(1, 1);
            prop_assert!(now <= last + 1e-6);
            prop_assert!(now >= tau0 - 1e-6);
            last = now;
        }
    }

    /// Matrix round-trips under linearisation for any geometry.
    #[test]
    fn matrix_roundtrip(
        w in 1usize..64,
        h in 1usize..64,
        values in prop::collection::vec(any::<u8>(), 1..4096),
    ) {
        prop_assume!(values.len() >= w * h);
        let m = Matrix::from_vec(h, w, values[..w * h].to_vec());
        for r in 0..h {
            for c in 0..w {
                prop_assert_eq!(m.get(r, c), m.as_slice()[m.linear(r, c)]);
            }
        }
        prop_assert_eq!(m.count(values[0]),
            m.as_slice().iter().filter(|&&v| v == values[0]).count());
    }
}
