//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing vectors whose length is drawn from `len`.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Vectors of `element` values with length in `len`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_range() {
        let s = vec(any::<u8>(), 2..9);
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..9).contains(&v.len()));
        }
    }
}
