//! Deterministic case generation and run configuration.

/// Per-test configuration (only `cases` is meaningful in this stub).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
    /// Ignored (shrinking is not implemented); kept so struct-update syntax
    /// against `ProptestConfig::default()` matches real proptest usage.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// Why a generated case did not count as a pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — draw another.
    Reject,
}

/// A splitmix64 stream, seeded deterministically from the test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream whose seed is a stable hash of `tag`.
    pub fn deterministic(tag: &str) -> Self {
        // FNV-1a over the tag bytes.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in tag.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant for test-case generation.
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_tag() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let mut c = TestRng::deterministic("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = TestRng::deterministic("unit");
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
