//! The [`Strategy`] trait and combinators.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`crate::prop_oneof!`] combinator: uniform choice among arms.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty => $u:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as $u).wrapping_sub(self.start as $u);
                    self.start.wrapping_add(rng.below(u64::from(span)) as $t)
                }
            }
        )*
    };
}

signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..500 {
            let v = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (0.5f32..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_and_union() {
        let mut rng = TestRng::deterministic("map");
        let s = crate::prop_oneof![
            (0u32..5).prop_map(|v| v * 10),
            (0u32..5).prop_map(|v: u32| v + 100),
        ];
        for _ in 0..100 {
            let v: u32 = s.generate(&mut rng);
            assert!(v.is_multiple_of(10) || (100..105).contains(&v));
        }
    }
}
