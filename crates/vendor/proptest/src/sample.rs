//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy that picks uniformly from a fixed list.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

/// Uniform choice among `options` (must be non-empty).
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_listed_values() {
        let s = select(vec![3u32, 7, 11]);
        let mut rng = TestRng::deterministic("select");
        for _ in 0..100 {
            assert!([3, 7, 11].contains(&s.generate(&mut rng)));
        }
    }
}
