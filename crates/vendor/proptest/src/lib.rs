//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this crate reimplements
//! the narrow proptest surface the workspace's property tests use: the
//! [`proptest!`] macro, range/`any`/tuple/`prop_oneof!` strategies,
//! `prop::collection::vec`, `prop::sample::select`, and the `prop_assert*`
//! family. Cases are generated from a deterministic splitmix64 stream
//! seeded by the test name, so failures reproduce across runs.
//!
//! Deliberately not implemented: shrinking, failure persistence, and
//! fork/timeout handling. A failing case panics with the values embedded in
//! the assertion message.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface test modules use.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` module path used inside `proptest!` bodies.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Run property tests: an optional `#![proptest_config(..)]` header, then
/// ordinary `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(1_000);
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= max_attempts,
                        "proptest stub: {} rejected too many cases ({} attempts)",
                        stringify!($name),
                        attempts,
                    );
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Skip the current case when `cond` is false (counts as a rejection, not a
/// failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Assert inside a property test (fails the whole test; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Pick uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}
