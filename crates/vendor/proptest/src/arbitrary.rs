//! `any::<T>()` — full-domain strategies per type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain generator.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_and_scalars() {
        let mut rng = TestRng::deterministic("arb");
        let a: [u32; 4] = <[u32; 4]>::arbitrary(&mut rng);
        let b: [u32; 4] = <[u32; 4]>::arbitrary(&mut rng);
        assert_ne!(a, b);
        let _: bool = any::<bool>().generate(&mut rng);
        let _: u64 = any::<u64>().generate(&mut rng);
    }
}
