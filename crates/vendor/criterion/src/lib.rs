//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this crate provides the
//! bench-definition surface the workspace uses — [`Criterion`],
//! [`BenchmarkId`], benchmark groups, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a plain
//! mean-of-N wall-clock timer instead of criterion's statistical engine.
//! Each benchmark prints `group/name: mean ± spread over N iterations`.
//!
//! Sample sizes are clamped to keep `cargo bench` affordable; set
//! `CRITERION_STUB_SAMPLES` to override.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterised benchmark (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_owned() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing harness handed to bench closures.
pub struct Bencher {
    samples: usize,
    last: Option<Report>,
}

#[derive(Clone, Copy)]
struct Report {
    mean: Duration,
    min: Duration,
    max: Duration,
    iters: usize,
}

impl Bencher {
    /// Time `f`, running it `samples` times after one warm-up call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, excluded from timing
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            min = min.min(dt);
            max = max.max(dt);
        }
        self.last = Some(Report {
            mean: total / self.samples as u32,
            min,
            max,
            iters: self.samples,
        });
    }
}

/// A named collection of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = stub_samples(self.sample_size);
        let mut b = Bencher {
            samples,
            last: None,
        };
        f(&mut b);
        match b.last {
            Some(r) => println!(
                "bench {}/{}: mean {:?} (min {:?}, max {:?}, {} iters)",
                self.name, id, r.mean, r.min, r.max, r.iters
            ),
            None => println!("bench {}/{}: no measurement recorded", self.name, id),
        }
    }

    /// Define a benchmark by name.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into().id, &mut f);
        self
    }

    /// Define a parameterised benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.id, &mut |b| f(b, input));
        self
    }

    /// Finish the group (a no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark registry/driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Define an ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

fn stub_samples(requested: usize) -> usize {
    match std::env::var("CRITERION_STUB_SAMPLES") {
        Ok(v) => v.parse().unwrap_or(requested).max(1),
        // The stub reports a plain mean, so large criterion-style sample
        // counts only add wall-clock; clamp them.
        Err(_) => requested.clamp(1, 5),
    }
}

/// Prevent the optimiser from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle bench functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_mean() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut count = 0u32;
        g.bench_function("count", |b| b.iter(|| count += 1));
        g.finish();
        // warm-up + timed iterations all ran
        assert!(count >= 2);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("LEM", 2560).to_string(), "LEM/2560");
    }
}
