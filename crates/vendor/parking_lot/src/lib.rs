//! Minimal in-repo stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so the tiny slice of the
//! parking_lot API this workspace uses — non-poisoning [`Mutex`] and
//! [`Condvar`] — is provided here over `std::sync`. Poisoning is handled by
//! unwrapping: a panicked worker already aborts the test run, matching
//! parking_lot's effective semantics for this codebase.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};

/// A mutex whose `lock` returns the guard directly (parking_lot style).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poison (parking_lot has no poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Self(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while waiting
    /// (parking_lot signature: re-assigns through `&mut guard`).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY-free dance: std's wait consumes and returns the guard; we
        // temporarily replace it through a take-and-restore.
        take_mut(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Replace `*slot` with `f(old)`. Aborts the process if `f` panics, which
/// cannot happen here: `Condvar::wait` only unwinds on poison, which we
/// map into the inner guard instead.
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    unsafe {
        let old = std::ptr::read(slot);
        let new = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(old)))
            .unwrap_or_else(|_| std::process::abort());
        std::ptr::write(slot, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
        assert!(*pair.0.lock());
    }
}
