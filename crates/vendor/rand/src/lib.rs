//! Minimal in-repo stand-in for the `rand` crate.
//!
//! The build environment has no network access; `philox::compat` only needs
//! the trait skeleton — [`rand_core::TryRng`], [`SeedableRng`], and the
//! blanket [`Rng`] over infallible generators — so exactly that skeleton is
//! provided here.

#![warn(missing_docs)]

/// The core generator traits (the `rand_core` re-export surface).
pub mod rand_core {
    /// A fallible random generator. Infallible generators set
    /// `Error = core::convert::Infallible` and receive the blanket
    /// [`crate::Rng`] implementation.
    pub trait TryRng {
        /// Error produced by a failed draw.
        type Error;

        /// Draw 32 random bits.
        fn try_next_u32(&mut self) -> Result<u32, Self::Error>;

        /// Draw 64 random bits.
        fn try_next_u64(&mut self) -> Result<u64, Self::Error>;

        /// Fill `dst` with random bytes.
        fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Self::Error>;
    }
}

/// Infallible generator interface, blanket-implemented over
/// [`rand_core::TryRng`] with an [`core::convert::Infallible`] error.
pub trait Rng {
    /// Draw 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Draw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dst` with random bytes.
    fn fill_bytes(&mut self, dst: &mut [u8]);
}

impl<R> Rng for R
where
    R: rand_core::TryRng<Error = core::convert::Infallible>,
{
    fn next_u32(&mut self) -> u32 {
        match self.try_next_u32() {
            Ok(v) => v,
        }
    }

    fn next_u64(&mut self) -> u64 {
        match self.try_next_u64() {
            Ok(v) => v,
        }
    }

    fn fill_bytes(&mut self, dst: &mut [u8]) {
        match self.try_fill_bytes(dst) {
            Ok(()) => (),
        }
    }
}

/// Construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed;

    /// Build a generator from `seed`.
    fn from_seed(seed: Self::Seed) -> Self;
}
