//! # pedsim-runner — batched replica execution
//!
//! The paper's evaluation (§V–§VI) is built from *sweeps*: an agent-count
//! ladder timed at five populations, a twenty-density throughput grid with
//! repeats, significance runs over tens of seeds. Each replica is an
//! independent simulation — same code, different `(scenario, model, seed)`
//! — so the natural execution shape is a **batch**: many replicas run
//! concurrently on a persistent worker pool, each stopping as soon as its
//! own [`StopCondition`] fires instead of burning a fixed step budget.
//!
//! * [`Job`] — one replica description: a `SimConfig` (scenario × model ×
//!   seed), an engine selection, and a stop condition;
//! * [`Batch`] — the executor: a persistent thread pool (reusing the
//!   `simt` worker pool — the same block scheduler the virtual GPU uses,
//!   one level up) that runs a job list and aggregates a [`BatchReport`];
//! * [`RunResult`] / [`BatchReport`] — per-replica outcomes and their
//!   deterministic aggregate, serializable to JSON.
//!
//! ## Determinism
//!
//! The repo's determinism story — bit-identical trajectories for equal
//! configurations — extends from one engine to whole fleets: every job is
//! seeded independently and runs on a sequential device by default
//! (parallelism comes from running *replicas* concurrently, not blocks),
//! results land in canonical order regardless of completion order, and
//! [`BatchReport::to_json`] omits wall-clock fields. The same job set
//! therefore produces **byte-identical** JSON across pool worker counts
//! and across job-submission order — asserted by
//! `tests/batch_determinism.rs`.
//!
//! ## Quickstart
//!
//! ```
//! use pedsim_core::prelude::*;
//! use pedsim_runner::{Batch, Job};
//!
//! let jobs: Vec<Job> = (0..4)
//!     .map(|seed| {
//!         let env = EnvConfig::small(32, 32, 30).with_seed(seed);
//!         Job::gpu(
//!             format!("corridor/seed{seed}"),
//!             SimConfig::new(env, ModelKind::aco()),
//!             StopCondition::arrived_or_steps(400),
//!         )
//!     })
//!     .collect();
//! let report = Batch::new(2).run(&jobs);
//! assert_eq!(report.results.len(), 4);
//! println!("{}", report.to_json());
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod job;
pub mod report;

pub use batch::Batch;
pub use job::{EngineSel, Job, JobError};
pub use pedsim_core::engine::{InvalidStopCondition, StopCondition, StopReason};
pub use report::{BatchReport, RunResult, FLUX_REPORT_WINDOW};

/// The commonly-used surface of the runner.
pub mod prelude {
    pub use crate::batch::Batch;
    pub use crate::job::{EngineSel, Job, JobError};
    pub use crate::report::{BatchReport, RunResult};
}
