//! The batch executor: a persistent worker pool running replica jobs
//! over shared compiled worlds.

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pedsim_core::engine::cpu::CpuEngine;
use pedsim_core::engine::gpu::GpuEngine;
use pedsim_core::engine::Engine;
use pedsim_core::metrics::{band_count, lane_index, segregation_index};
use pedsim_core::world::{CacheStats, CompiledWorld, WorldCache};
use simt::exec::pool::WorkerPool;

use crate::job::{EngineSel, Job, JobError};
use crate::report::{BatchReport, RunResult, FLUX_REPORT_WINDOW};

/// Runs job lists on a persistent thread pool.
///
/// The pool is the same work-stealing block scheduler the virtual GPU
/// dispatches kernels on (`simt::exec::pool::WorkerPool`), reused one
/// level up with whole replicas as the work items: workers claim jobs
/// from a shared cursor, the caller blocks until every job has finished,
/// and a panicking replica is re-raised on the calling thread after the
/// remaining jobs drain — the pool survives for the next batch.
///
/// World compilation is hoisted out of the workers entirely: before any
/// worker starts, the calling thread resolves each job's
/// [`CompiledWorld`] through a batch-owned [`WorldCache`], so the
/// replicas of one configuration share a single artifact (one placement,
/// one flow-field Dijkstra) and repeated batches on the same executor —
/// sweeps, the fundamental-diagram ladder — skip compilation on cache
/// hits. The time each job spent acquiring its world is reported as the
/// result's `setup` timing.
///
/// Results are written into per-job slots and aggregated in canonical
/// order, so the report is identical for any worker count.
pub struct Batch {
    pool: WorkerPool,
    cache: WorldCache,
    use_cache: bool,
}

impl Batch {
    /// A batch executor with `workers` pool threads (≥ 1) and the world
    /// cache enabled.
    pub fn new(workers: usize) -> Self {
        Self {
            pool: WorkerPool::new(workers),
            cache: WorldCache::default(),
            use_cache: true,
        }
    }

    /// A batch executor sized to the host's available parallelism.
    pub fn auto() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(workers)
    }

    /// Builder: enable or disable the world cache. Disabled, every job
    /// compiles its world cold — the control arm for cache-effect
    /// measurements (trajectories are bit-identical either way; only
    /// `setup` timings move).
    pub fn with_world_cache(mut self, on: bool) -> Self {
        self.use_cache = on;
        self
    }

    /// Number of pool workers.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Cumulative world-cache traffic across every batch this executor
    /// has run.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Publish the world-cache counters as recorder gauges (the
    /// `pedsim-obs` telemetry hook; see
    /// [`pedsim_core::world::WORLD_CACHE_GAUGES`]).
    pub fn export_world_cache(&self, rec: &mut pedsim_obs::Recorder) {
        self.cache.export(rec);
    }

    /// Execute every job and aggregate the report, validating each job's
    /// run description first: a misconfigured stop condition (e.g. a
    /// gridlock patience beyond the retained movement history) returns a
    /// typed [`JobError`] before any worker thread starts, instead of
    /// panicking inside the pool mid-batch. Blocks until the whole batch
    /// has finished; jobs run in work-stealing order but the report is
    /// deterministic (see [`BatchReport::from_results`]).
    pub fn try_run(&self, jobs: &[Job]) -> Result<BatchReport, JobError> {
        for job in jobs {
            job.validate()?;
        }
        // Resolve every job's world up front on the calling thread:
        // compile-once semantics need no cross-worker coordination, and
        // the per-job acquisition time (cache fetch vs. cold compile) is
        // the job's `setup` timing.
        let worlds: Vec<(Arc<CompiledWorld>, Duration)> = jobs
            .iter()
            .map(|job| {
                let t0 = Instant::now();
                let world = if self.use_cache {
                    self.cache.get_or_compile(&job.cfg)
                } else {
                    CompiledWorld::compile(&job.cfg)
                };
                (world, t0.elapsed())
            })
            .collect();
        let slots: Vec<Mutex<Option<RunResult>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        self.pool.run(jobs.len(), &|i| {
            let (world, setup) = &worlds[i];
            let result = execute_with_world(&jobs[i], world, *setup);
            *slots[i].lock() = Some(result);
        });
        Ok(BatchReport::from_results(
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("every job fills its slot"))
                .collect(),
        ))
    }

    /// [`Batch::try_run`], panicking (on the calling thread, with the
    /// typed error's message) when a job is invalid.
    pub fn run(&self, jobs: &[Job]) -> BatchReport {
        self.try_run(jobs)
            .unwrap_or_else(|e| panic!("invalid batch: {e}"))
    }
}

/// Run one job to completion on the current thread, compiling its world
/// cold (no cache).
pub fn execute(job: &Job) -> RunResult {
    let t0 = Instant::now();
    let world = CompiledWorld::compile(&job.cfg);
    execute_with_world(job, &world, t0.elapsed())
}

/// Run one job to completion on the current thread over an already
/// compiled world. `setup` is the time the caller spent acquiring the
/// world (cold compile or cache fetch) and is reported verbatim.
pub fn execute_with_world(job: &Job, world: &Arc<CompiledWorld>, setup: Duration) -> RunResult {
    let world_name = job
        .cfg
        .scenario
        .as_ref()
        .map_or_else(|| "corridor".to_string(), |s| s.name().to_string());
    // The scenario's population sum is authoritative: the EnvConfig record
    // only mirrors group 0 and would misreport asymmetric or multi-group
    // worlds as `agents_per_side * 2`. Open worlds start empty, so their
    // meaningful size is the recyclable slot capacity.
    let agents = job.cfg.scenario.as_ref().map_or_else(
        || job.cfg.env.total_agents(),
        |s| {
            if s.is_open() {
                s.total_capacity()
            } else {
                s.total_agents()
            }
        },
    );
    // Every selection flows through a `from_world` constructor, so the
    // per-replica stage is one code path regardless of backend.
    let engine: Box<dyn Engine + Send> = match &job.engine {
        EngineSel::Cpu => Box::new(CpuEngine::from_world(world, job.cfg.clone())),
        EngineSel::Gpu(device) => Box::new(GpuEngine::from_world(
            world,
            job.cfg.clone(),
            device.clone(),
        )),
        EngineSel::Backend(b) => {
            // Validation resolves the name first; a direct execute() call
            // on an unvalidated job panics with the typed message.
            b.build_from_world(world, job.cfg.clone())
                .unwrap_or_else(|e| panic!("job {:?}: {e}", job.label))
        }
    };
    finish(job, world_name, agents, world.fingerprint(), setup, engine)
}

fn finish<E: Engine>(
    job: &Job,
    world: String,
    agents: usize,
    config: u64,
    setup: Duration,
    mut engine: E,
) -> RunResult {
    // Untimed warmup: run the discard steps, then snapshot the pipeline
    // clocks so the reported timings cover the measured phase only.
    if job.warmup > 0 {
        engine.run(job.warmup);
    }
    let warm_stages = engine.step_timings().clone();
    let warm_steps = engine.steps_done();
    // Time the simulation loop alone: engine construction (world
    // materialisation, upload) and result extraction stay outside, per
    // the paper's "time spent solely for simulation" protocol.
    let t0 = Instant::now();
    let stop = engine.run_until(&job.stop);
    let wall = t0.elapsed();
    let metrics = engine.metrics();
    // One snapshot serves all three order parameters.
    let mat = metrics.is_some().then(|| engine.mat_snapshot());
    let (backend, threads) = job.engine.backend_sel();
    RunResult {
        label: job.label.clone(),
        world,
        model: engine.model().name().to_string(),
        engine: job.engine.name(),
        backend,
        threads,
        mode: engine.iteration_mode().name(),
        config,
        seed: job.cfg.env.seed,
        agents,
        steps: engine.steps_done() - warm_steps,
        stop,
        throughput: metrics.map(|m| m.throughput()),
        flux: metrics.and_then(|m| m.windowed_flux(FLUX_REPORT_WINDOW)),
        live: metrics.map(|m| m.live_count()),
        total_moves: metrics.map(|m| m.total_moves),
        lane_index: mat.as_ref().map(lane_index),
        bands: mat.as_ref().map(band_count),
        segregation: mat.as_ref().map(segregation_index),
        gridlock_risk: metrics.and_then(|m| m.gridlock_warning(FLUX_REPORT_WINDOW)),
        setup,
        wall,
        stages: engine.step_timings().delta(&warm_stages),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_core::engine::StopCondition;
    use pedsim_core::params::{ModelKind, SimConfig};
    use pedsim_grid::EnvConfig;

    fn corridor_job(label: &str, seed: u64, steps: u64) -> Job {
        let env = EnvConfig::small(24, 24, 16).with_seed(seed);
        Job::gpu(
            label,
            SimConfig::new(env, ModelKind::lem()),
            StopCondition::arrived_or_steps(steps),
        )
    }

    #[test]
    fn batch_runs_all_jobs() {
        let jobs: Vec<Job> = (0..5).map(|s| corridor_job("j", s, 200)).collect();
        let report = Batch::new(3).run(&jobs);
        assert_eq!(report.jobs, 5);
        assert!(report.results.iter().all(|r| r.steps > 0));
        assert!(report.throughput_total > 0);
    }

    #[test]
    fn early_termination_undershoots_the_budget() {
        // A near-empty corridor crosses everyone long before 5,000 steps.
        let env = EnvConfig::small(24, 24, 4).with_seed(3);
        let job = Job::gpu(
            "sparse",
            SimConfig::new(env, ModelKind::lem()),
            StopCondition::arrived_or_steps(5_000),
        );
        let report = Batch::new(1).run(&[job]);
        let r = &report.results[0];
        assert_eq!(r.stop, pedsim_core::engine::StopReason::AllArrived);
        assert!(r.steps < 5_000, "ran all {} steps", r.steps);
        assert_eq!(r.throughput, Some(8));
    }

    #[test]
    fn cpu_and_gpu_jobs_agree_in_one_batch() {
        let env = EnvConfig::small(24, 24, 16).with_seed(9);
        let cfg = SimConfig::new(env, ModelKind::aco());
        let jobs = vec![
            Job::cpu("ref", cfg.clone(), StopCondition::Steps(40)),
            Job::gpu("ref", cfg, StopCondition::Steps(40)),
        ];
        let report = Batch::new(2).run(&jobs);
        let [a, b] = &report.results[..] else {
            panic!("two results")
        };
        // Same configuration ⇒ bit-identical trajectories on both engines.
        assert_eq!(a.throughput, b.throughput);
        assert_eq!(a.total_moves, b.total_moves);
        assert_eq!(a.lane_index, b.lane_index);
    }

    #[test]
    fn metrics_off_reports_nulls() {
        let env = EnvConfig::small(24, 24, 8).with_seed(1);
        let cfg = SimConfig::new(env, ModelKind::lem()).with_metrics(false);
        let report = Batch::new(1).run(&[Job::gpu("t", cfg, StopCondition::Steps(10))]);
        let r = &report.results[0];
        assert_eq!(r.throughput, None);
        assert_eq!(r.total_moves, None);
        assert_eq!(r.lane_index, None);
        assert_eq!(r.steps, 10);
    }

    #[test]
    fn oversized_gridlock_patience_is_a_typed_error_not_a_worker_panic() {
        use pedsim_core::metrics::MAX_GRIDLOCK_PATIENCE;
        let env = EnvConfig::small(16, 16, 4).with_seed(1);
        let bad = Job::gpu(
            "too-patient",
            SimConfig::new(env, ModelKind::lem()),
            StopCondition::Gridlocked {
                threshold: 1,
                patience: MAX_GRIDLOCK_PATIENCE + 1,
            },
        );
        let good = corridor_job("ok", 1, 50);
        let batch = Batch::new(2);
        // try_run rejects the whole batch up front — before any worker
        // executes anything (the good job never runs).
        let err = batch.try_run(&[good.clone(), bad]).unwrap_err();
        assert!(
            matches!(err, crate::job::JobError::InvalidStop { ref label, .. }
                if label == "too-patient")
        );
        // run() panics on the *calling* thread with the typed message.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let bad = Job::gpu(
                "too-patient",
                SimConfig::new(env, ModelKind::lem()),
                StopCondition::Gridlocked {
                    threshold: 1,
                    patience: MAX_GRIDLOCK_PATIENCE + 1,
                },
            );
            batch.run(&[bad]);
        }));
        let panic_msg = *caught.unwrap_err().downcast::<String>().expect("string");
        assert!(panic_msg.contains("gridlock patience"), "{panic_msg}");
        // The pool is untouched; the next batch runs normally.
        assert_eq!(batch.run(&[good]).jobs, 1);
    }

    #[test]
    fn replica_panic_reaches_caller_and_pool_survives() {
        // Job validation catches bad stop conditions up front, but a
        // replica can still panic inside a worker (here: a world whose
        // spawn bands cannot hold the population panics during engine
        // construction). The batch re-raises the panic on the calling
        // thread after the remaining jobs drain, and the pool survives
        // for the next batch.
        let env = EnvConfig::small(8, 8, 1_000).with_seed(1);
        let bad = Job::gpu(
            "boom",
            SimConfig::new(env, ModelKind::lem()),
            StopCondition::Steps(5),
        );
        let batch = Batch::new(2);
        assert!(bad.validate().is_ok(), "the run description itself is fine");
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch.run(&[bad]);
        }));
        assert!(caught.is_err(), "worker panic must re-raise on the caller");
        let ok = corridor_job("ok", 1, 50);
        assert_eq!(batch.run(&[ok]).jobs, 1);
    }

    #[test]
    fn asymmetric_world_reports_true_population() {
        // The EnvConfig record mirrors only group 0; the report must count
        // the scenario's full (uneven) population.
        let scenario = pedsim_scenario::registry::asymmetric_corridor(24, 24, 30, 10).with_seed(4);
        let job = Job::gpu(
            "asym",
            SimConfig::from_scenario(&scenario, ModelKind::lem()),
            StopCondition::arrived_or_steps(300),
        );
        let report = Batch::new(1).run(&[job]);
        let r = &report.results[0];
        assert_eq!(r.agents, 40);
        assert_eq!(report.agents_total, 40);
        if r.stop == pedsim_core::engine::StopReason::AllArrived {
            assert_eq!(r.throughput, Some(40));
        }
    }

    #[test]
    fn metric_stop_without_metrics_is_a_typed_error_not_a_worker_panic() {
        // This used to be the documented "caller bug" failure mode: the
        // condition was evaluated mid-run and panicked deep inside
        // StopCondition::check on a worker thread. Job validation now
        // rejects the description before any worker starts.
        let env = EnvConfig::small(16, 16, 4).with_seed(1);
        let bad = Job::gpu(
            "bad",
            SimConfig::new(env, ModelKind::lem()).with_metrics(false),
            StopCondition::AllArrived,
        );
        let batch = Batch::new(2);
        let err = batch.try_run(std::slice::from_ref(&bad)).unwrap_err();
        assert!(
            matches!(err, crate::job::JobError::InvalidStop { ref label, .. } if label == "bad")
        );
        assert!(err.to_string().contains("track_metrics"), "{err}");
        // run() still panics on the *calling* thread with the typed
        // message, and the pool survives for the next batch.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            batch.run(&[bad]);
        }));
        let panic_msg = *caught.unwrap_err().downcast::<String>().expect("string");
        assert!(panic_msg.contains("track_metrics"), "{panic_msg}");
        let ok = corridor_job("ok", 1, 50);
        assert_eq!(batch.run(&[ok]).jobs, 1);
    }
}
