//! Per-replica results and the deterministic batch aggregate.

use std::fmt::Write as _;
use std::time::Duration;

use pedsim_core::engine::{Stage, StepTimings, StopReason};

/// The sliding window (steps) behind [`RunResult::flux`]: long enough to
/// smooth single-step noise, short enough that smoke-scale runs observe
/// it fully. Must stay ≤ `pedsim_core::metrics::MAX_FLUX_WINDOW`.
pub const FLUX_REPORT_WINDOW: u64 = 64;

/// Outcome of one completed job.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// The job's label.
    pub label: String,
    /// Scenario name, or `"corridor"` for the classic `EnvConfig` world.
    pub world: String,
    /// Model name (`"LEM"` / `"ACO"`).
    pub model: String,
    /// Engine name (`"cpu"` / `"gpu"`).
    pub engine: &'static str,
    /// Backend registry key actually executing the job (`"scalar"` /
    /// `"pooled"` / `"simt"`); the legacy engine selectors map onto
    /// their registry equivalents.
    pub backend: &'static str,
    /// Worker-thread count of the executing backend (1 for sequential
    /// backends).
    pub threads: usize,
    /// Stage-traversal mode the engine resolved at build time (`"dense"`
    /// / `"sparse"`; an `Auto` configuration reports what it settled to).
    pub mode: &'static str,
    /// World-configuration fingerprint ([`Scenario::config_hash`] for
    /// scenario worlds, an `EnvConfig` field hash for the classic
    /// corridor). Stable across commits for equal configurations;
    /// rendered as 16 lower-hex chars in JSON and registry rows.
    ///
    /// [`Scenario::config_hash`]: pedsim_scenario::Scenario::config_hash
    pub config: u64,
    /// Replica seed.
    pub seed: u64,
    /// Total agents simulated.
    pub agents: usize,
    /// Steps actually executed (≤ the budget under early termination).
    pub steps: u64,
    /// Why the run stopped.
    pub stop: StopReason,
    /// Agents that reached their target (`None` when metrics were off).
    /// Open-boundary worlds count crossing *events* (recycled slots may
    /// cross repeatedly).
    pub throughput: Option<usize>,
    /// Mean crossings per step over the final [`FLUX_REPORT_WINDOW`]
    /// steps (`None` when metrics were off or the run was shorter than
    /// the window) — the open-boundary worlds' flux reading.
    pub flux: Option<f64>,
    /// Agents live on the grid when the run stopped (`None` when metrics
    /// were off). Equals the population for closed worlds.
    pub live: Option<usize>,
    /// Total cell changes over the run (`None` when metrics were off).
    pub total_moves: Option<u64>,
    /// Lane-formation index of the final configuration (`None` when
    /// metrics were off).
    pub lane_index: Option<f64>,
    /// Mean per-row directional band count of the final configuration
    /// (`None` when metrics were off).
    pub bands: Option<f64>,
    /// Group segregation index of the final configuration, in `[0, 1]`
    /// (`None` when metrics were off).
    pub segregation: Option<f64>,
    /// Gridlock early-warning gauge over the final
    /// [`FLUX_REPORT_WINDOW`] steps, in `[0, 1]` (`None` when metrics
    /// were off or the run was shorter than the window).
    pub gridlock_risk: Option<f64>,
    /// Time spent acquiring this job's compiled world: a cold compile
    /// (placement + flow fields) on a cache miss, a cache fetch on a hit.
    /// Engine construction and the simulation loop are excluded.
    /// Non-deterministic; excluded from [`BatchReport::to_json`],
    /// serialized as `setup_s` by [`BatchReport::to_json_with_timing`].
    pub setup: Duration,
    /// Wall time of the simulation loop alone (engine construction and
    /// result extraction excluded). Non-deterministic; excluded from
    /// [`BatchReport::to_json`].
    pub wall: Duration,
    /// Per-stage wall-clock totals from the engine's unified step
    /// pipeline (both engines report through the same surface).
    /// Non-deterministic; excluded from [`BatchReport::to_json`],
    /// serialized as `stages_s` by [`BatchReport::to_json_with_timing`].
    pub stages: StepTimings,
}

impl RunResult {
    /// Canonical ordering key: results sort by it so a report is
    /// independent of completion *and* submission order.
    fn key(&self) -> (&str, &str, &str, &str, &str, usize, &str, u64, usize) {
        (
            &self.label,
            &self.world,
            &self.model,
            self.engine,
            self.backend,
            self.threads,
            self.mode,
            self.seed,
            self.agents,
        )
    }

    fn json_object(&self, timing: bool) -> String {
        let mut o = String::from("{");
        push_str_field(&mut o, "label", &self.label);
        push_str_field(&mut o, "world", &self.world);
        push_str_field(&mut o, "model", &self.model);
        push_str_field(&mut o, "engine", self.engine);
        push_str_field(&mut o, "backend", self.backend);
        push_raw_field(&mut o, "threads", &self.threads.to_string());
        push_str_field(&mut o, "mode", self.mode);
        push_str_field(&mut o, "config", &pedsim_obs::hash::hex(self.config));
        push_raw_field(&mut o, "seed", &self.seed.to_string());
        push_raw_field(&mut o, "agents", &self.agents.to_string());
        push_raw_field(&mut o, "steps", &self.steps.to_string());
        push_str_field(&mut o, "stop", self.stop.name());
        push_raw_field(&mut o, "throughput", &opt_num(self.throughput));
        push_raw_field(&mut o, "flux", &self.flux.map_or("null".into(), json_f64));
        push_raw_field(&mut o, "live", &opt_num(self.live));
        push_raw_field(&mut o, "moves", &opt_num(self.total_moves));
        push_raw_field(
            &mut o,
            "lane_index",
            &self.lane_index.map_or("null".into(), json_f64),
        );
        push_raw_field(&mut o, "bands", &self.bands.map_or("null".into(), json_f64));
        push_raw_field(
            &mut o,
            "segregation",
            &self.segregation.map_or("null".into(), json_f64),
        );
        push_raw_field(
            &mut o,
            "gridlock_risk",
            &self.gridlock_risk.map_or("null".into(), json_f64),
        );
        if timing {
            push_raw_field(&mut o, "setup_s", &json_f64(self.setup.as_secs_f64()));
            push_raw_field(&mut o, "wall_s", &json_f64(self.wall.as_secs_f64()));
            let mut stages = String::from("{");
            for stage in Stage::ALL {
                if stages.len() > 1 {
                    stages.push_str(", ");
                }
                let _ = write!(
                    stages,
                    "\"{}\": {}",
                    stage.name(),
                    json_f64(self.stages.of(stage).as_secs_f64())
                );
            }
            stages.push('}');
            push_raw_field(&mut o, "stages_s", &stages);
        }
        o.push('}');
        o
    }

    fn wall_secs(&self) -> f64 {
        self.wall.as_secs_f64()
    }

    /// Simulation steps per wall-clock second (0 for a zero-length or
    /// unstarted run).
    pub fn steps_per_sec(&self) -> f64 {
        let secs = self.wall_secs();
        if secs > 0.0 && self.steps > 0 {
            self.steps as f64 / secs
        } else {
            0.0
        }
    }

    /// Render as one journal [`Record`] (schema `pedsim.run.v1`): the
    /// deterministic body carries identity, provenance, and the physics
    /// observables; wall-clock timings land in the stripped `wall` tail,
    /// so [`pedsim_obs::journal::canonical`] of this record is
    /// byte-reproducible across repeat runs.
    ///
    /// [`Record`]: pedsim_obs::journal::Record
    pub fn journal_record(&self) -> pedsim_obs::journal::Record {
        let mut r = pedsim_obs::journal::Record::new("pedsim.run.v1");
        r.str_field("label", &self.label);
        r.str_field("world", &self.world);
        r.str_field("model", &self.model);
        r.str_field("engine", self.engine);
        r.str_field("backend", self.backend);
        r.u64_field("threads", self.threads as u64);
        r.str_field("mode", self.mode);
        r.str_field("config", &pedsim_obs::hash::hex(self.config));
        r.u64_field("seed", self.seed);
        r.u64_field("agents", self.agents as u64);
        r.u64_field("steps", self.steps);
        r.str_field("stop", self.stop.name());
        r.raw_field("throughput", &opt_num(self.throughput));
        r.opt_f64_field("flux", self.flux);
        r.raw_field("live", &opt_num(self.live));
        r.raw_field("moves", &opt_num(self.total_moves));
        r.opt_f64_field("lane_index", self.lane_index);
        r.opt_f64_field("bands", self.bands);
        r.opt_f64_field("segregation", self.segregation);
        r.opt_f64_field("gridlock_risk", self.gridlock_risk);
        r.wall_f64("setup_s", self.setup.as_secs_f64());
        r.wall_f64("wall_s", self.wall_secs());
        for stage in Stage::ALL {
            r.wall_f64(
                &format!("{}_s", stage.name()),
                self.stages.of(stage).as_secs_f64(),
            );
        }
        r
    }

    /// Render as one results-registry [`Row`] under the given benchmark
    /// name, scale preset, and commit. Wall KPIs (steps/sec, per-stage
    /// ms/step) are derived from this result's timings; the flux column
    /// is 0 when the run was shorter than the report window.
    ///
    /// [`Row`]: pedsim_obs::registry::Row
    pub fn registry_row(
        &self,
        bench: &str,
        scale: &str,
        commit: &str,
    ) -> pedsim_obs::registry::Row {
        let per_step_ms = |secs: f64| {
            if self.steps > 0 {
                secs * 1e3 / self.steps as f64
            } else {
                0.0
            }
        };
        let mut stage_ms = [0.0; 6];
        for (slot, stage) in stage_ms.iter_mut().zip(Stage::ALL) {
            *slot = per_step_ms(self.stages.of(stage).as_secs_f64());
        }
        pedsim_obs::registry::Row {
            schema: pedsim_obs::registry::SCHEMA.to_owned(),
            config: pedsim_obs::hash::hex(self.config),
            commit: commit.to_owned(),
            scale: scale.to_owned(),
            bench: bench.to_owned(),
            world: self.world.clone(),
            engine: self.engine.to_owned(),
            backend: self.backend.to_owned(),
            threads: self.threads as u64,
            model: self.model.clone(),
            seed: self.seed,
            agents: self.agents as u64,
            steps: self.steps,
            flux: self.flux.unwrap_or(0.0),
            bands: self.bands,
            segregation: self.segregation,
            gridlock_risk: self.gridlock_risk,
            steps_per_sec: self.steps_per_sec(),
            total_ms_per_step: per_step_ms(self.wall_secs()),
            stage_ms,
            setup_s: self.setup.as_secs_f64(),
        }
    }
}

/// Aggregate over a finished batch, with results in canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Per-replica results, sorted by label/world/model/engine/backend/
    /// threads/seed.
    pub results: Vec<RunResult>,
    /// Number of jobs executed.
    pub jobs: usize,
    /// Sum of agent populations across jobs.
    pub agents_total: usize,
    /// Sum of throughput over metric-tracked jobs.
    pub throughput_total: usize,
    /// Sum of moves over metric-tracked jobs.
    pub moves_total: u64,
    /// Sum of executed steps across jobs.
    pub steps_total: u64,
    /// Mean executed steps per job (0 for an empty batch).
    pub mean_steps: f64,
    /// Jobs that stopped with [`StopReason::AllArrived`].
    pub arrived: usize,
    /// Jobs that stopped with [`StopReason::Gridlocked`].
    pub gridlocked: usize,
    /// Jobs that stopped with [`StopReason::SteadyState`].
    pub steady: usize,
    /// Jobs that ran out their step budget.
    pub exhausted: usize,
    /// Sum of per-job world-acquisition times (cold compiles plus cache
    /// fetches) — the batch's total setup cost.
    pub setup_total: Duration,
    /// Sum of per-job wall times (CPU-seconds of simulation).
    pub wall_total: Duration,
    /// Longest single job (the batch's wall-clock critical path).
    pub wall_max: Duration,
}

impl BatchReport {
    /// Aggregate `results` (any order) into a canonical report.
    pub fn from_results(mut results: Vec<RunResult>) -> Self {
        results.sort_by(|a, b| a.key().cmp(&b.key()));
        let jobs = results.len();
        let agents_total = results.iter().map(|r| r.agents).sum();
        let throughput_total = results.iter().filter_map(|r| r.throughput).sum();
        let moves_total = results.iter().filter_map(|r| r.total_moves).sum();
        let steps_total: u64 = results.iter().map(|r| r.steps).sum();
        let mean_steps = if jobs == 0 {
            0.0
        } else {
            steps_total as f64 / jobs as f64
        };
        let count = |reason: StopReason| results.iter().filter(|r| r.stop == reason).count();
        let setup_total = results.iter().map(|r| r.setup).sum();
        let wall_total = results.iter().map(|r| r.wall).sum();
        let wall_max = results.iter().map(|r| r.wall).max().unwrap_or_default();
        Self {
            jobs,
            agents_total,
            throughput_total,
            moves_total,
            steps_total,
            mean_steps,
            arrived: count(StopReason::AllArrived),
            gridlocked: count(StopReason::Gridlocked),
            steady: count(StopReason::SteadyState),
            exhausted: count(StopReason::StepBudget),
            setup_total,
            wall_total,
            wall_max,
            results,
        }
    }

    /// Results whose label matches `label` exactly (canonical order).
    pub fn with_label<'a>(&'a self, label: &str) -> impl Iterator<Item = &'a RunResult> + 'a {
        let label = label.to_string();
        self.results.iter().filter(move |r| r.label == label)
    }

    /// Mean throughput over results with `label` (0 when none tracked
    /// metrics or none matched).
    pub fn mean_throughput(&self, label: &str) -> f64 {
        let (mut sum, mut n) = (0usize, 0usize);
        for r in self.with_label(label) {
            if let Some(t) = r.throughput {
                sum += t;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// **Deterministic** JSON: identical bytes for identical job sets
    /// regardless of worker count or submission order. Wall-clock fields
    /// are omitted; use [`BatchReport::to_json_with_timing`] to include
    /// them.
    pub fn to_json(&self) -> String {
        self.render_json(false)
    }

    /// JSON including the (non-deterministic) wall-clock fields.
    pub fn to_json_with_timing(&self) -> String {
        self.render_json(true)
    }

    fn render_json(&self, timing: bool) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"pedsim.batch_report.v7\",");
        let _ = writeln!(s, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(s, "  \"aggregate\": {{");
        let _ = writeln!(s, "    \"agents_total\": {},", self.agents_total);
        let _ = writeln!(s, "    \"throughput_total\": {},", self.throughput_total);
        let _ = writeln!(s, "    \"moves_total\": {},", self.moves_total);
        let _ = writeln!(s, "    \"steps_total\": {},", self.steps_total);
        let _ = writeln!(s, "    \"mean_steps\": {},", json_f64(self.mean_steps));
        let _ = write!(
            s,
            "    \"stops\": {{\"all_arrived\": {}, \"gridlocked\": {}, \"steady_state\": {}, \
             \"step_budget\": {}}}",
            self.arrived, self.gridlocked, self.steady, self.exhausted
        );
        if timing {
            let _ = writeln!(s, ",");
            let _ = writeln!(
                s,
                "    \"setup_total_s\": {},",
                json_f64(self.setup_total.as_secs_f64())
            );
            let _ = writeln!(
                s,
                "    \"wall_total_s\": {},",
                json_f64(self.wall_total.as_secs_f64())
            );
            let _ = writeln!(
                s,
                "    \"wall_max_s\": {}",
                json_f64(self.wall_max.as_secs_f64())
            );
        } else {
            let _ = writeln!(s);
        }
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"results\": [");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let _ = writeln!(s, "    {}{comma}", r.json_object(timing));
        }
        let _ = writeln!(s, "  ]");
        s.push('}');
        s.push('\n');
        s
    }
}

/// Escape a string for a JSON literal (quotes, backslashes, controls).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite `f64` via Rust's shortest-roundtrip `Display` (itself
/// deterministic); non-finite values become `null`.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn opt_num<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or("null".into(), |n| n.to_string())
}

fn push_str_field(buf: &mut String, key: &str, value: &str) {
    if buf.len() > 1 {
        buf.push_str(", ");
    }
    let _ = write!(buf, "\"{key}\": \"{}\"", json_escape(value));
}

fn push_raw_field(buf: &mut String, key: &str, raw: &str) {
    if buf.len() > 1 {
        buf.push_str(", ");
    }
    let _ = write!(buf, "\"{key}\": {raw}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(label: &str, seed: u64, stop: StopReason) -> RunResult {
        RunResult {
            label: label.into(),
            world: "paper_corridor".into(),
            model: "LEM".into(),
            engine: "gpu",
            backend: "simt",
            threads: 1,
            mode: "sparse",
            config: 0x00c0_ffee_00c0_ffee,
            seed,
            agents: 40,
            steps: 100,
            stop,
            throughput: Some(40),
            flux: Some(0.5),
            live: Some(40),
            total_moves: Some(1_000),
            lane_index: Some(0.25),
            bands: Some(2.0),
            segregation: Some(0.75),
            gridlock_risk: Some(0.0),
            setup: Duration::from_micros(seed),
            wall: Duration::from_millis(seed),
            stages: StepTimings::default(),
        }
    }

    #[test]
    fn report_sorts_results_canonically() {
        let a = BatchReport::from_results(vec![
            result("b", 2, StopReason::AllArrived),
            result("a", 9, StopReason::StepBudget),
            result("b", 1, StopReason::Gridlocked),
        ]);
        let order: Vec<(String, u64)> = a
            .results
            .iter()
            .map(|r| (r.label.clone(), r.seed))
            .collect();
        assert_eq!(
            order,
            vec![("a".into(), 9), ("b".into(), 1), ("b".into(), 2)]
        );
        assert_eq!(a.jobs, 3);
        assert_eq!(a.arrived, 1);
        assert_eq!(a.gridlocked, 1);
        assert_eq!(a.exhausted, 1);
        assert_eq!(a.throughput_total, 120);
        assert_eq!(a.wall_max, Duration::from_millis(9));
    }

    #[test]
    fn json_is_order_invariant_and_excludes_wall() {
        let fwd = BatchReport::from_results(vec![
            result("a", 1, StopReason::AllArrived),
            result("a", 2, StopReason::AllArrived),
        ]);
        let mut rev_results = vec![
            result("a", 2, StopReason::AllArrived),
            result("a", 1, StopReason::AllArrived),
        ];
        rev_results[0].wall = Duration::from_secs(5); // timing noise
        rev_results[0].setup = Duration::from_secs(2); // more timing noise
        let rev = BatchReport::from_results(rev_results);
        assert_eq!(fwd.to_json(), rev.to_json());
        assert!(!fwd.to_json().contains("wall"));
        assert!(!fwd.to_json().contains("setup"));
        assert!(!fwd.to_json().contains("stages_s"));
        let timed = fwd.to_json_with_timing();
        assert!(timed.contains("wall_total_s"));
        assert!(timed.contains("setup_total_s"));
        assert!(timed.contains("\"setup_s\":"));
        assert!(timed.contains("pedsim.batch_report.v7"));
        // Every pipeline stage is serialized per result in timing mode.
        for stage in Stage::ALL {
            assert!(
                timed.contains(&format!("\"{}\":", stage.name())),
                "stage {} missing from timing JSON",
                stage.name()
            );
        }
    }

    #[test]
    fn json_escapes_labels() {
        let mut r = result("a", 1, StopReason::AllArrived);
        r.label = "quote\" slash\\ tab\t".into();
        let j = BatchReport::from_results(vec![r]).to_json();
        assert!(j.contains("quote\\\" slash\\\\ tab\\t"));
    }

    #[test]
    fn empty_batch_is_valid() {
        let r = BatchReport::from_results(Vec::new());
        assert_eq!(r.jobs, 0);
        assert_eq!(r.mean_steps, 0.0);
        assert!(r.to_json().contains("\"results\": [\n  ]"));
    }

    #[test]
    fn journal_record_isolates_wall_and_renders_provenance() {
        let mut r = result("a", 1, StopReason::AllArrived);
        r.wall = Duration::from_millis(250);
        let line = r.journal_record().line();
        assert!(line.contains("\"schema\": \"pedsim.run.v1\""));
        assert!(line.contains("\"config\": \"00c0ffee00c0ffee\""));
        assert!(line.contains("\"bands\": 2"));
        assert!(line.contains("\"wall\": {\"setup_s\": "));
        assert!(line.contains("\"wall_s\": 0.25"));
        // The canonical body is wall-free and byte-stable against
        // timing noise.
        let canon = pedsim_obs::journal::canonical(&line);
        assert!(!canon.contains("wall"));
        assert!(!canon.contains("setup"));
        let mut noisy = result("a", 1, StopReason::AllArrived);
        noisy.wall = Duration::from_secs(9);
        assert_eq!(
            canon,
            pedsim_obs::journal::canonical(&noisy.journal_record().line())
        );
    }

    #[test]
    fn registry_row_derives_per_step_kpis() {
        let mut r = result("a", 1, StopReason::AllArrived);
        r.wall = Duration::from_millis(200); // 100 steps in 0.2 s
        let row = r.registry_row("step_throughput", "smoke", "abc123abc123");
        assert_eq!(row.config, "00c0ffee00c0ffee");
        assert_eq!(row.commit, "abc123abc123");
        assert_eq!(row.seed, 1);
        assert_eq!(row.steps_per_sec, 500.0);
        assert_eq!(row.total_ms_per_step, 2.0);
        assert_eq!(row.stage_ms, [0.0; 6]);
        // setup_s is a per-job timing, not per step.
        assert_eq!(row.setup_s, 1e-6);
        // Rows round-trip through the registry CSV.
        let parsed = pedsim_obs::registry::Row::parse(&row.csv_line()).expect("parse");
        assert_eq!(parsed, row);
        // A zero-length run divides by nothing.
        let mut z = result("z", 1, StopReason::AllArrived);
        z.steps = 0;
        z.wall = Duration::ZERO;
        let zrow = z.registry_row("b", "smoke", "c");
        assert_eq!(zrow.steps_per_sec, 0.0);
        assert_eq!(zrow.total_ms_per_step, 0.0);
    }

    #[test]
    fn mean_throughput_groups_by_label() {
        let mut a = result("x", 1, StopReason::AllArrived);
        a.throughput = Some(10);
        let mut b = result("x", 2, StopReason::AllArrived);
        b.throughput = Some(30);
        let c = result("y", 3, StopReason::AllArrived);
        let rep = BatchReport::from_results(vec![a, b, c]);
        assert_eq!(rep.mean_throughput("x"), 20.0);
        assert_eq!(rep.mean_throughput("y"), 40.0);
        assert_eq!(rep.mean_throughput("zzz"), 0.0);
    }
}
