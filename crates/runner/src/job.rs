//! Job descriptions: one independent replica per [`Job`].

use pedsim_core::engine::{Backend, InvalidStopCondition, StopCondition, UnknownBackend};
use pedsim_core::params::SimConfig;
use simt::Device;

/// Why a [`Job`] is rejected before execution.
///
/// Caught at batch construction — the alternative is a panic deep inside
/// a `WorkerPool` worker mid-batch, long after the configuration mistake
/// was made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The job's stop condition can never be evaluated.
    InvalidStop {
        /// The offending job's label.
        label: String,
        /// What is wrong with the condition.
        source: InvalidStopCondition,
    },
    /// The job names a backend the registry does not know.
    UnknownBackend {
        /// The offending job's label.
        label: String,
        /// The registry's typed lookup error (lists the known names).
        source: UnknownBackend,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidStop { label, source } => {
                write!(f, "job {label:?}: {source}")
            }
            Self::UnknownBackend { label, source } => {
                write!(f, "job {label:?}: {source}")
            }
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidStop { source, .. } => Some(source),
            Self::UnknownBackend { source, .. } => Some(source),
        }
    }
}

/// Which engine executes a job.
///
/// Batch parallelism comes from running many replicas concurrently, so
/// the default GPU selection is a **sequential** device — nesting a
/// parallel device inside every batch worker would oversubscribe the
/// host without changing any trajectory (engines are schedule-
/// independent). Pass an explicit parallel device (e.g. for a
/// single-job timing batch) via [`EngineSel::Gpu`]; sharing one
/// parallel device across concurrent jobs is safe (its pool serializes
/// launches) but makes them take turns.
#[derive(Debug, Clone)]
pub enum EngineSel {
    /// The single-threaded reference engine.
    Cpu,
    /// The virtual-GPU engine on the given device.
    Gpu(Device),
    /// A registry backend selected by name (`scalar` / `pooled` / `simt`),
    /// resolved at validation time — an unknown name is a typed
    /// [`JobError::UnknownBackend`], never a worker panic.
    Backend(Backend),
}

impl EngineSel {
    /// Stable name for reports ("cpu" / "gpu", or the registry key for
    /// [`EngineSel::Backend`] jobs).
    pub fn name(&self) -> &'static str {
        match self {
            EngineSel::Cpu => "cpu",
            EngineSel::Gpu(_) => "gpu",
            // Resolve to the registry's static name; validation catches
            // unknown names before any report is written.
            EngineSel::Backend(b) => b.resolve().map_or("unknown", |d| d.name),
        }
    }

    /// Backend provenance for results: the registry key and thread count
    /// actually executing this job. The legacy selectors map onto their
    /// registry equivalents (`Cpu` → `scalar`/1, `Gpu` → `simt` with the
    /// device's worker count).
    pub fn backend_sel(&self) -> (&'static str, usize) {
        match self {
            EngineSel::Cpu => ("scalar", 1),
            EngineSel::Gpu(device) => ("simt", device.worker_count()),
            EngineSel::Backend(b) => (b.resolve().map_or("unknown", |d| d.name), b.threads),
        }
    }
}

/// One replica: a configuration (scenario × model × seed), an engine, and
/// a stop condition.
#[derive(Debug, Clone)]
pub struct Job {
    /// Caller-chosen label grouping related replicas in reports (e.g.
    /// `"density07/ACO"`). Need not be unique: the canonical result
    /// order falls back to world/model/engine/seed within a label.
    pub label: String,
    /// Full simulation configuration. Metric-based stop conditions and
    /// per-run metrics in the report require `track_metrics` (on by
    /// default); timing protocols may switch it off and stop on
    /// [`StopCondition::Steps`] alone.
    pub cfg: SimConfig,
    /// Engine selection.
    pub engine: EngineSel,
    /// When this replica is done.
    pub stop: StopCondition,
    /// Untimed warmup steps executed before the measured loop starts.
    /// The reported `steps`, `wall`, and `stages` cover the measured
    /// phase only; caches are hot and allocators settled by the time the
    /// clock starts. Step-counting stop conditions see the engine's
    /// *total* step count, so a warmup-`w` job stopping on
    /// [`StopCondition::Steps`]`(w + n)` measures exactly `n` steps.
    pub warmup: u64,
}

impl Job {
    /// A GPU job on a fresh **sequential** device (the batch default; see
    /// [`EngineSel`]).
    pub fn gpu(label: impl Into<String>, cfg: SimConfig, stop: StopCondition) -> Self {
        Self {
            label: label.into(),
            cfg,
            engine: EngineSel::Gpu(Device::sequential()),
            stop,
            warmup: 0,
        }
    }

    /// A GPU job on an explicit device (shared pools, parallel policies,
    /// profiling devices).
    pub fn on_device(
        label: impl Into<String>,
        cfg: SimConfig,
        device: Device,
        stop: StopCondition,
    ) -> Self {
        Self {
            label: label.into(),
            cfg,
            engine: EngineSel::Gpu(device),
            stop,
            warmup: 0,
        }
    }

    /// A CPU-reference job.
    pub fn cpu(label: impl Into<String>, cfg: SimConfig, stop: StopCondition) -> Self {
        Self {
            label: label.into(),
            cfg,
            engine: EngineSel::Cpu,
            stop,
            warmup: 0,
        }
    }

    /// A job on a registry backend selected by name and thread count.
    pub fn backend(
        label: impl Into<String>,
        cfg: SimConfig,
        backend: Backend,
        stop: StopCondition,
    ) -> Self {
        Self {
            label: label.into(),
            cfg,
            engine: EngineSel::Backend(backend),
            stop,
            warmup: 0,
        }
    }

    /// Builder: run `steps` untimed warmup steps before the measured
    /// loop (see [`Job::warmup`]). Remember that step-counting stop
    /// conditions count warmup steps too.
    pub fn with_warmup(mut self, steps: u64) -> Self {
        self.warmup = steps;
        self
    }

    /// Check the job's run description without executing it — the batch
    /// runner validates every job up front so a misconfigured stop
    /// condition surfaces as a typed error on the calling thread, never a
    /// worker panic mid-batch. Covers both the condition's parameters and
    /// its fit with this job's engine configuration: a metric-based stop
    /// on a `track_metrics`-off config can never fire.
    pub fn validate(&self) -> Result<(), JobError> {
        self.stop
            .validate_for(self.cfg.track_metrics)
            .map_err(|source| JobError::InvalidStop {
                label: self.label.clone(),
                source,
            })?;
        if let EngineSel::Backend(b) = &self.engine {
            b.resolve().map_err(|source| JobError::UnknownBackend {
                label: self.label.clone(),
                source,
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_core::params::ModelKind;
    use pedsim_grid::EnvConfig;

    #[test]
    fn constructors_select_engines() {
        let cfg = SimConfig::new(EnvConfig::small(16, 16, 4), ModelKind::lem());
        let g = Job::gpu("g", cfg.clone(), StopCondition::Steps(1));
        let c = Job::cpu("c", cfg.clone(), StopCondition::Steps(1));
        assert_eq!(g.engine.name(), "gpu");
        assert_eq!(c.engine.name(), "cpu");
        let d = Job::on_device("d", cfg, Device::parallel(), StopCondition::Steps(1));
        assert_eq!(d.engine.name(), "gpu");
    }

    #[test]
    fn backend_jobs_resolve_and_report_provenance() {
        let cfg = SimConfig::new(EnvConfig::small(16, 16, 4), ModelKind::lem());
        let j = Job::backend(
            "p",
            cfg.clone(),
            Backend::pooled(4),
            StopCondition::Steps(1),
        );
        assert_eq!(j.engine.name(), "pooled");
        assert_eq!(j.engine.backend_sel(), ("pooled", 4));
        assert!(j.validate().is_ok());
        // The legacy selectors map onto their registry equivalents.
        assert_eq!(EngineSel::Cpu.backend_sel(), ("scalar", 1));
        let (name, _) = Job::gpu("g", cfg, StopCondition::Steps(1))
            .engine
            .backend_sel();
        assert_eq!(name, "simt");
    }

    #[test]
    fn unknown_backend_is_a_typed_job_error() {
        let cfg = SimConfig::new(EnvConfig::small(16, 16, 4), ModelKind::lem());
        let j = Job::backend(
            "mystery",
            cfg,
            Backend::named("cuda", 2),
            StopCondition::Steps(1),
        );
        let err = j.validate().unwrap_err();
        assert!(matches!(err, JobError::UnknownBackend { ref label, .. } if label == "mystery"));
        let msg = err.to_string();
        assert!(msg.contains("cuda") && msg.contains("scalar"), "{msg}");
    }

    #[test]
    fn validate_flags_oversized_gridlock_patience() {
        use pedsim_core::metrics::MAX_GRIDLOCK_PATIENCE;
        let cfg = SimConfig::new(EnvConfig::small(16, 16, 4), ModelKind::lem());
        let ok = Job::gpu(
            "ok",
            cfg.clone(),
            StopCondition::settled_or_steps(100, 1, 32),
        );
        assert_eq!(ok.validate(), Ok(()));
        let bad = Job::cpu(
            "too-patient",
            cfg,
            StopCondition::Gridlocked {
                threshold: 1,
                patience: MAX_GRIDLOCK_PATIENCE + 7,
            },
        );
        let err = bad.validate().unwrap_err();
        assert!(matches!(err, JobError::InvalidStop { ref label, .. } if label == "too-patient"));
        assert!(err.to_string().contains("gridlock patience"));
    }

    #[test]
    fn validate_flags_metric_stop_on_metrics_off_config() {
        // The old failure mode was a documented "caller bug" panic deep in
        // StopCondition::check, raised on a worker thread mid-batch; the
        // job check now rejects the description up front.
        let cfg = SimConfig::new(EnvConfig::small(16, 16, 4), ModelKind::lem()).with_metrics(false);
        for stop in [
            StopCondition::AllArrived,
            StopCondition::settled_or_steps(100, 1, 8),
            StopCondition::steady_or_steps(100, 0.5, 8),
        ] {
            let job = Job::cpu("dark", cfg.clone(), stop);
            let err = job.validate().unwrap_err();
            assert!(err.to_string().contains("track_metrics"), "{err}");
        }
        // A pure step budget needs no metrics; metrics-on configs accept
        // metric-based stops as before.
        assert!(Job::cpu("ok", cfg.clone(), StopCondition::Steps(10))
            .validate()
            .is_ok());
        let tracked = SimConfig::new(EnvConfig::small(16, 16, 4), ModelKind::lem());
        assert!(Job::cpu("ok", tracked, StopCondition::AllArrived)
            .validate()
            .is_ok());
    }
}
