//! Batch determinism: the fleet-level extension of the repo's
//! bit-identical single-engine guarantee.
//!
//! * the same job set produces a **byte-identical** deterministic JSON
//!   report across 1, 2, and 8 pool workers;
//! * shuffling the job submission order changes nothing;
//! * `run_until(AllArrived)` agrees with the legacy `run(n)`-then-inspect
//!   protocol on `paper_corridor`.

use pedsim_core::engine::{Engine, StopCondition, StopReason};
use pedsim_core::params::{ModelKind, SimConfig};
use pedsim_core::prelude::GpuEngine;
use pedsim_grid::EnvConfig;
use pedsim_runner::{Batch, Job};
use pedsim_scenario::sweep;

/// A small but heterogeneous job set: two registry worlds × two
/// populations × three seeds × both models, GPU engines, with a CPU
/// replica mixed in.
fn job_set() -> Vec<Job> {
    let mut jobs = Vec::new();
    for point in sweep::grid(&["paper_corridor", "doorway"], 24, &[8, 16], &[1, 2, 3]) {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let label = format!("{}/n{}/{}", point.world, point.per_side * 2, model.name());
            let cfg = SimConfig::from_scenario(point.scenario.clone(), model);
            jobs.push(Job::gpu(
                label,
                cfg,
                StopCondition::settled_or_steps(250, 1, 8),
            ));
        }
    }
    // One CPU reference replica rides along.
    let env = EnvConfig::small(24, 24, 8).with_seed(5);
    jobs.push(Job::cpu(
        "corridor/cpu_ref",
        SimConfig::new(env, ModelKind::lem()),
        StopCondition::arrived_or_steps(250),
    ));
    jobs
}

#[test]
fn report_is_identical_across_worker_counts() {
    let jobs = job_set();
    let baseline = Batch::new(1).run(&jobs).to_json();
    for workers in [2usize, 8] {
        let json = Batch::new(workers).run(&jobs).to_json();
        assert_eq!(baseline, json, "batch report diverged at {workers} workers");
    }
    // Sanity: the report actually contains every job.
    assert!(baseline.contains("\"jobs\": 25"));
}

#[test]
fn report_is_identical_across_job_order() {
    let jobs = job_set();
    let baseline = Batch::new(4).run(&jobs).to_json();

    let mut reversed = jobs.clone();
    reversed.reverse();
    assert_eq!(baseline, Batch::new(4).run(&reversed).to_json());

    // A deterministic interleave (odd indices first, then even).
    let shuffled: Vec<Job> = jobs
        .iter()
        .skip(1)
        .step_by(2)
        .chain(jobs.iter().step_by(2))
        .cloned()
        .collect();
    assert_eq!(baseline, Batch::new(4).run(&shuffled).to_json());
}

#[test]
fn run_until_all_arrived_agrees_with_run_then_inspect() {
    let env = EnvConfig::small(32, 32, 24).with_seed(77);
    let scenario = pedsim_scenario::registry::paper_corridor(&env);
    let budget = 600u64;

    // Legacy protocol: burn the whole budget, inspect afterwards.
    let mut blind = GpuEngine::new(
        SimConfig::from_scenario(scenario.clone(), ModelKind::lem()),
        simt::Device::sequential(),
    );
    blind.run(budget);
    let blind_throughput = blind.metrics().expect("metrics").throughput();
    assert_eq!(
        blind_throughput,
        env.total_agents(),
        "test premise: everyone crosses within the budget"
    );

    // Early termination: stop the moment the last agent arrives.
    let mut early = GpuEngine::new(
        SimConfig::from_scenario(scenario, ModelKind::lem()),
        simt::Device::sequential(),
    );
    let reason = early.run_until(&StopCondition::arrived_or_steps(budget));
    assert_eq!(reason, StopReason::AllArrived);
    assert!(
        early.steps_done() < budget,
        "early exit should undershoot the budget (took {} steps)",
        early.steps_done()
    );
    assert_eq!(
        early.metrics().expect("metrics").throughput(),
        blind_throughput
    );
}

#[test]
fn gridlock_stop_cannot_misfire_on_success() {
    // Sparse corridor: everyone arrives, then the crowd stands still.
    // With the all-arrived guard, a Gridlocked-first condition must
    // still report AllArrived.
    let env = EnvConfig::small(24, 24, 4).with_seed(11);
    let mut e = GpuEngine::new(
        SimConfig::new(env, ModelKind::lem()),
        simt::Device::sequential(),
    );
    let cond = StopCondition::FirstOf(vec![
        StopCondition::Gridlocked {
            threshold: 1,
            patience: 4,
        },
        StopCondition::AllArrived,
        StopCondition::Steps(2_000),
    ]);
    let reason = e.run_until(&cond);
    assert_eq!(reason, StopReason::AllArrived);
}
