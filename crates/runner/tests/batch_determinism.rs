//! Batch determinism: the fleet-level extension of the repo's
//! bit-identical single-engine guarantee.
//!
//! * the same job set produces a **byte-identical** deterministic JSON
//!   report across 1, 2, and 8 pool workers;
//! * shuffling the job submission order changes nothing;
//! * `run_until(AllArrived)` agrees with the legacy `run(n)`-then-inspect
//!   protocol on `paper_corridor`.

use pedsim_core::engine::{Engine, StopCondition, StopReason};
use pedsim_core::params::{ModelKind, SimConfig};
use pedsim_core::prelude::GpuEngine;
use pedsim_grid::EnvConfig;
use pedsim_runner::{Batch, Job};
use pedsim_scenario::sweep;

/// A small but heterogeneous job set: four registry worlds — including
/// the four-group plaza, the shared-exit T-junction, and the asymmetric
/// corridor — × two populations × three seeds × both models, GPU engines,
/// with a CPU replica mixed in.
fn job_set() -> Vec<Job> {
    let mut jobs = Vec::new();
    let worlds = [
        "paper_corridor",
        "four_way_crossing",
        "t_junction_merge",
        "asymmetric_corridor",
    ];
    for point in sweep::grid(&worlds, 24, &[8, 16], &[1, 2, 3]) {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let label = format!("{}/n{}/{}", point.world, point.per_side * 2, model.name());
            let cfg = SimConfig::from_scenario(&point.scenario, model);
            jobs.push(Job::gpu(
                label,
                cfg,
                StopCondition::settled_or_steps(250, 1, 8),
            ));
        }
    }
    // One CPU reference replica rides along.
    let env = EnvConfig::small(24, 24, 8).with_seed(5);
    jobs.push(Job::cpu(
        "corridor/cpu_ref",
        SimConfig::new(env, ModelKind::lem()),
        StopCondition::arrived_or_steps(250),
    ));
    jobs
}

#[test]
fn report_is_identical_across_worker_counts() {
    let jobs = job_set();
    let baseline = Batch::new(1).run(&jobs).to_json();
    for workers in [2usize, 8] {
        let json = Batch::new(workers).run(&jobs).to_json();
        assert_eq!(baseline, json, "batch report diverged at {workers} workers");
    }
    // Sanity: the report actually contains every job, multi-group worlds
    // included.
    assert!(baseline.contains("\"jobs\": 49"));
    assert!(baseline.contains("four_way_crossing"));
    assert!(baseline.contains("t_junction_merge"));
    assert!(baseline.contains("asymmetric_corridor"));
}

#[test]
fn cpu_and_gpu_agree_on_multi_group_worlds_in_a_batch() {
    // Bit-identity across engines holds for every new registry world:
    // identical throughput/moves/lane metrics per (world, seed) pair.
    for world in [
        "four_way_crossing",
        "t_junction_merge",
        "asymmetric_corridor",
    ] {
        let scenario = sweep::build_world(world, 24, 12)
            .unwrap_or_else(|| panic!("{world} missing"))
            .with_seed(31);
        let cfg = SimConfig::from_scenario(&scenario, ModelKind::aco());
        let jobs = vec![
            Job::cpu("pair", cfg.clone(), StopCondition::Steps(30)),
            Job::gpu("pair", cfg, StopCondition::Steps(30)),
        ];
        let report = Batch::new(2).run(&jobs);
        let [a, b] = &report.results[..] else {
            panic!("two results")
        };
        assert_eq!(a.throughput, b.throughput, "{world}");
        assert_eq!(a.total_moves, b.total_moves, "{world}");
        assert_eq!(a.lane_index, b.lane_index, "{world}");
    }
}

#[test]
fn report_is_identical_across_job_order() {
    let jobs = job_set();
    let baseline = Batch::new(4).run(&jobs).to_json();

    let mut reversed = jobs.clone();
    reversed.reverse();
    assert_eq!(baseline, Batch::new(4).run(&reversed).to_json());

    // A deterministic interleave (odd indices first, then even).
    let shuffled: Vec<Job> = jobs
        .iter()
        .skip(1)
        .step_by(2)
        .chain(jobs.iter().step_by(2))
        .cloned()
        .collect();
    assert_eq!(baseline, Batch::new(4).run(&shuffled).to_json());
}

#[test]
fn run_until_all_arrived_agrees_with_run_then_inspect() {
    let env = EnvConfig::small(32, 32, 24).with_seed(77);
    let scenario = pedsim_scenario::registry::paper_corridor(&env);
    let budget = 600u64;

    // Legacy protocol: burn the whole budget, inspect afterwards.
    let mut blind = GpuEngine::new(
        SimConfig::from_scenario(&scenario, ModelKind::lem()),
        simt::Device::sequential(),
    );
    blind.run(budget);
    let blind_throughput = blind.metrics().expect("metrics").throughput();
    assert_eq!(
        blind_throughput,
        env.total_agents(),
        "test premise: everyone crosses within the budget"
    );

    // Early termination: stop the moment the last agent arrives.
    let mut early = GpuEngine::new(
        SimConfig::from_scenario(&scenario, ModelKind::lem()),
        simt::Device::sequential(),
    );
    let reason = early.run_until(&StopCondition::arrived_or_steps(budget));
    assert_eq!(reason, StopReason::AllArrived);
    assert!(
        early.steps_done() < budget,
        "early exit should undershoot the budget (took {} steps)",
        early.steps_done()
    );
    assert_eq!(
        early.metrics().expect("metrics").throughput(),
        blind_throughput
    );
}

#[test]
fn gridlock_stop_cannot_misfire_on_success() {
    // Sparse corridor: everyone arrives, then the crowd stands still.
    // With the all-arrived guard, a Gridlocked-first condition must
    // still report AllArrived.
    let env = EnvConfig::small(24, 24, 4).with_seed(11);
    let mut e = GpuEngine::new(
        SimConfig::new(env, ModelKind::lem()),
        simt::Device::sequential(),
    );
    let cond = StopCondition::FirstOf(vec![
        StopCondition::Gridlocked {
            threshold: 1,
            patience: 4,
        },
        StopCondition::AllArrived,
        StopCondition::Steps(2_000),
    ]);
    let reason = e.run_until(&cond);
    assert_eq!(reason, StopReason::AllArrived);
}
