//! World-cache acceptance: the content-addressed [`pedsim_core::world::WorldCache`]
//! inside [`Batch`] is a pure setup optimisation. Physics output must be
//! byte-identical between cached and cold-compiled batches at every
//! worker count, cache statistics must follow deterministically from the
//! job set (not from scheduling), and the new `setup_s` timing must be
//! present in the timed report while staying out of the deterministic
//! one.

use std::time::Duration;

use pedsim_core::engine::StopCondition;
use pedsim_core::params::{ModelKind, SimConfig};
use pedsim_runner::{Batch, Job};
use pedsim_scenario::registry;

/// A job set that exercises both cache levels: replicas of one grid-field
/// world across several seeds (full-key misses that share the
/// geometry-keyed flow field), exact-duplicate configurations (full-key
/// hits), and a second distinct geometry.
fn job_set() -> Vec<Job> {
    let mut jobs = Vec::new();
    for seed in [1u64, 2, 3] {
        let scenario = registry::crossing(24, 16).with_seed(seed);
        for model in [ModelKind::lem(), ModelKind::aco()] {
            jobs.push(Job::gpu(
                format!("crossing/s{seed}/{}", model.name()),
                SimConfig::from_scenario(&scenario, model),
                StopCondition::Steps(25),
            ));
        }
    }
    let doorway = registry::doorway(24, 24, 20, 5).with_seed(9);
    jobs.push(Job::cpu(
        "doorway/cold",
        SimConfig::from_scenario(&doorway, ModelKind::lem()),
        StopCondition::Steps(25),
    ));
    jobs
}

#[test]
fn cached_batches_match_cold_batches_byte_for_byte_at_every_worker_count() {
    let jobs = job_set();
    let cold = Batch::new(1).with_world_cache(false).run(&jobs).to_json();
    for workers in [1usize, 2, 8] {
        let cached = Batch::new(workers).run(&jobs).to_json();
        assert_eq!(
            cold, cached,
            "cached batch at {workers} workers diverged from the cold reference"
        );
    }
}

#[test]
fn cache_statistics_are_deterministic_and_scheduling_independent() {
    let jobs = job_set();
    for workers in [1usize, 4] {
        let batch = Batch::new(workers);
        batch.run(&jobs);
        let stats = batch.cache_stats();
        // The full key is the scenario's config_hash — model kind lives
        // in SimConfig but compiles to the same world, so each seed's
        // lem/aco pair shares one entry: 4 distinct keys (3 crossing
        // seeds + doorway), 3 same-scenario hits.
        assert_eq!(stats.hits + stats.misses, 7, "one lookup per job");
        assert_eq!(stats.misses, 4, "one compile per distinct configuration");
        assert_eq!(stats.hits, 3, "same-scenario model pairs share a world");
        // The geometry-keyed field level deduplicates across seeds too:
        // one Dijkstra solve per geometry (crossing, doorway), reused by
        // the seed-varied crossing compiles.
        assert_eq!(stats.field_misses, 2, "one flow-field solve per geometry");
        assert_eq!(stats.field_hits, 2, "seed-varied replicas reuse a field");
        assert_eq!(stats.evictions, 0);

        // Re-running the same jobs on the same batch hits every full key.
        batch.run(&jobs);
        let warm = batch.cache_stats();
        assert_eq!(warm.hits, 3 + 7, "warm rerun must hit every full key");
        assert_eq!(warm.misses, 4, "no new compiles on the warm rerun");
    }
}

#[test]
fn warm_reruns_do_not_pay_the_compile_again() {
    // Timing-adjacent but robust: the warm rerun's setup total is bounded
    // by the cold run's, up to generous scheduler noise. The real
    // guarantee (no recompilation) is pinned exactly via cache stats; the
    // duration check only confirms the timer plumbing measures the fetch,
    // not the compile.
    let jobs = job_set();
    let batch = Batch::new(2);
    let cold = batch.run(&jobs);
    let warm = batch.run(&jobs);
    assert_eq!(batch.cache_stats().hits, 3 + 7);
    assert!(
        warm.setup_total <= cold.setup_total + Duration::from_millis(20),
        "warm setup {:?} should not exceed cold setup {:?} beyond noise",
        warm.setup_total,
        cold.setup_total
    );
}

#[test]
fn setup_timing_is_timed_only_never_deterministic() {
    let jobs = job_set();
    let report = Batch::new(2).run(&jobs);
    let deterministic = report.to_json();
    let timed = report.to_json_with_timing();
    assert!(
        !deterministic.contains("setup"),
        "deterministic JSON must not leak wall-clock setup timing"
    );
    assert!(timed.contains("\"setup_total_s\":"));
    assert!(timed.contains("\"setup_s\":"));
    assert!(timed.contains("\"schema\": \"pedsim.batch_report.v7\""));
    assert_eq!(report.results.len(), jobs.len());
    for r in &report.results {
        assert!(
            r.setup <= report.setup_total,
            "{}: per-job setup exceeds the batch total",
            r.label
        );
    }
}

#[test]
fn disabling_the_cache_leaves_it_untouched() {
    let jobs = job_set();
    let batch = Batch::new(2).with_world_cache(false);
    batch.run(&jobs);
    let stats = batch.cache_stats();
    assert_eq!(stats.hits + stats.misses, 0, "cache bypassed entirely");
    assert_eq!(stats.field_hits + stats.field_misses, 0);
}
