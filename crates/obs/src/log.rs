//! The `PEDSIM_LOG` verbosity switch.
//!
//! Benchmark and sweep binaries used to write progress chatter to
//! stderr unconditionally. They now route it through this module, which
//! reads `PEDSIM_LOG` (once per query — the binaries are short-lived):
//!
//! * `off` / `0` / `none` — silence everything but genuine errors;
//! * `summary` / `1` — per-phase progress lines (the default, matching
//!   the binaries' historical behavior);
//! * `verbose` / `2` / `debug` — per-job and per-replica detail.
//!
//! Use the [`log_summary!`](crate::log_summary) /
//! [`log_verbose!`](crate::log_verbose) macros from binaries; genuine
//! error messages should stay on plain `eprintln!` so `PEDSIM_LOG=off`
//! can never hide a failure.

/// Logging verbosity, ordered so `>=` comparisons read naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No progress output at all.
    Off,
    /// Per-phase progress lines (default).
    Summary,
    /// Per-job / per-replica detail.
    Verbose,
}

impl Level {
    /// Parse a `PEDSIM_LOG` value. Unrecognized strings fall back to
    /// [`Level::Summary`] — a typo should not silence a run.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Level::Off,
            "verbose" | "debug" | "2" => Level::Verbose,
            _ => Level::Summary,
        }
    }

    /// The level selected by the `PEDSIM_LOG` environment variable
    /// ([`Level::Summary`] when unset).
    pub fn from_env() -> Level {
        match std::env::var("PEDSIM_LOG") {
            Ok(v) => Level::parse(&v),
            Err(_) => Level::Summary,
        }
    }
}

/// Whether summary-level progress output is enabled.
pub fn summary_enabled() -> bool {
    Level::from_env() >= Level::Summary
}

/// Whether verbose-level progress output is enabled.
pub fn verbose_enabled() -> bool {
    Level::from_env() >= Level::Verbose
}

/// `eprintln!` gated on [`summary_enabled`].
#[macro_export]
macro_rules! log_summary {
    ($($arg:tt)*) => {
        if $crate::log::summary_enabled() {
            eprintln!($($arg)*);
        }
    };
}

/// `eprintln!` gated on [`verbose_enabled`].
#[macro_export]
macro_rules! log_verbose {
    ($($arg:tt)*) => {
        if $crate::log::verbose_enabled() {
            eprintln!($($arg)*);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_aliases_and_defaults() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("NONE"), Level::Off);
        assert_eq!(Level::parse("0"), Level::Off);
        assert_eq!(Level::parse("summary"), Level::Summary);
        assert_eq!(Level::parse("1"), Level::Summary);
        assert_eq!(Level::parse("verbose"), Level::Verbose);
        assert_eq!(Level::parse("DEBUG"), Level::Verbose);
        assert_eq!(Level::parse("2"), Level::Verbose);
        assert_eq!(Level::parse("garbage"), Level::Summary);
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Off < Level::Summary);
        assert!(Level::Summary < Level::Verbose);
    }
}
