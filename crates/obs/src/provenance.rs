//! Commit provenance for registry rows.
//!
//! Registry records are compared *across commits*, so every row carries
//! the commit it was measured at. Discovery order:
//!
//! 1. `PEDSIM_COMMIT` — explicit override for odd environments;
//! 2. `GITHUB_SHA` — set by CI;
//! 3. `git rev-parse HEAD` in the current directory;
//! 4. the literal `"unknown"` (rows stay parseable outside a checkout).
//!
//! The value is truncated to 12 hex characters — plenty of uniqueness,
//! fixed column width.

use std::process::Command;

/// Width commits are truncated to in registry rows.
pub const COMMIT_WIDTH: usize = 12;

/// The current commit identifier (see module docs for discovery order).
pub fn commit() -> String {
    for var in ["PEDSIM_COMMIT", "GITHUB_SHA"] {
        if let Ok(v) = std::env::var(var) {
            let v = v.trim().to_owned();
            if !v.is_empty() {
                return truncate(&v);
            }
        }
    }
    if let Ok(out) = Command::new("git").args(["rev-parse", "HEAD"]).output() {
        if out.status.success() {
            if let Ok(sha) = String::from_utf8(out.stdout) {
                let sha = sha.trim();
                if !sha.is_empty() {
                    return truncate(sha);
                }
            }
        }
    }
    "unknown".to_owned()
}

fn truncate(s: &str) -> String {
    s.chars().take(COMMIT_WIDTH).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_is_short_and_non_empty() {
        let c = commit();
        assert!(!c.is_empty());
        assert!(c.len() <= COMMIT_WIDTH || c == "unknown");
    }

    #[test]
    fn truncate_caps_width() {
        assert_eq!(truncate("abcdef0123456789"), "abcdef012345");
        assert_eq!(truncate("abc"), "abc");
    }
}
