//! # pedsim-obs — structured run telemetry and the results registry
//!
//! The observability layer the rest of the workspace reports through,
//! in three connected pieces:
//!
//! * [`recorder`] — a lightweight, zero-dependency telemetry recorder
//!   ([`Recorder`]: counters, gauges, fixed-bucket histograms, a
//!   ring-buffered event log) that the unified engine pipeline feeds
//!   per-stage timings and kernel-launch stats into. CPU and GPU engines
//!   report through this one surface, so their telemetry always has the
//!   same shape (zeros where a backend has nothing to report);
//! * [`journal`] — a deterministic JSONL sink: one [`journal::Record`]
//!   per replica, keys in a stable order fixed by construction, with
//!   every wall-clock reading isolated in a trailing `"wall"` object so
//!   the rest of a line is byte-reproducible across runs and worker
//!   counts ([`journal::canonical`] strips the wall object for
//!   comparisons);
//! * [`registry`] — the append-only `results/registry.csv`: one row per
//!   benchmark measurement, keyed by config hash + commit + scale with
//!   full provenance, plus the per-KPI tolerance table and the
//!   regression check (`registry_query --check`) CI gates on.
//!
//! Supporting modules: [`log`] (the `PEDSIM_LOG` off/summary/verbose
//! switch every bench binary honors), [`provenance`] (commit discovery),
//! and [`hash`] (the stable FNV-1a hasher behind scenario config hashes).
//!
//! ## Determinism convention
//!
//! Counters and gauges hold *simulation* quantities (launch counts,
//! spawn totals, physics observables) and must be bit-reproducible for
//! equal configurations. Histograms hold *wall-clock* durations and are
//! inherently noisy. The journal and registry encode that split
//! structurally: deterministic fields first, wall-clock fields in a
//! clearly delimited tail that tooling can strip.

#![warn(missing_docs)]

pub mod hash;
pub mod journal;
pub mod log;
pub mod provenance;
pub mod recorder;
pub mod registry;

pub use recorder::{Event, Histogram, Recorder};
