//! Stable 64-bit FNV-1a hashing for configuration fingerprints.
//!
//! `std::hash` makes no cross-version stability promise, and registry
//! rows are compared across commits — so configuration hashes go through
//! this fixed, dependency-free FNV-1a implementation instead. The hash is
//! a *fingerprint* (collision-unlikely identity for registry series
//! keys), not a cryptographic commitment.

/// FNV-1a offset basis (64-bit).
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher with helpers for the primitive
/// shapes configuration structs are made of.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self(OFFSET)
    }

    /// Fold raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
        self
    }

    /// Fold a `u64` (little-endian bytes).
    pub fn u64(self, v: u64) -> Self {
        self.bytes(&v.to_le_bytes())
    }

    /// Fold a `usize` (widened — the fingerprint must not depend on the
    /// host's pointer width).
    pub fn usize(self, v: usize) -> Self {
        self.u64(v as u64)
    }

    /// Fold an `f64` through its IEEE-754 bits (configuration floats are
    /// exact values like 0.5 or 4.0; bit identity is the right equality).
    pub fn f64(self, v: f64) -> Self {
        self.u64(v.to_bits())
    }

    /// Fold a string, length-prefixed so `("ab", "c")` and `("a", "bc")`
    /// fingerprint differently.
    pub fn str(self, s: &str) -> Self {
        self.usize(s.len()).bytes(s.as_bytes())
    }

    /// The finished fingerprint.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Render a fingerprint as the fixed-width lower-hex form used in
/// journal/registry provenance columns.
pub fn hex(fingerprint: u64) -> String {
    format!("{fingerprint:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(Fnv64::new().finish(), OFFSET);
        assert_eq!(Fnv64::new().bytes(b"a").finish(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(
            Fnv64::new().bytes(b"foobar").finish(),
            0x8594_4171_f739_67e8
        );
    }

    #[test]
    fn length_prefix_separates_field_boundaries() {
        let ab_c = Fnv64::new().str("ab").str("c").finish();
        let a_bc = Fnv64::new().str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex(0xab), "00000000000000ab");
        assert_eq!(hex(u64::MAX).len(), 16);
    }
}
