//! The append-only results registry and its KPI regression gate.
//!
//! `results/registry.csv` accumulates one row per benchmark
//! measurement, across commits, forever — benchmarks *append*, nothing
//! rewrites. Each row carries full provenance (config hash, commit,
//! scale, world, engine, model, seed) alongside its KPIs, so any two
//! rows can be compared knowing exactly what was measured — including,
//! since v2, the backend registry key and thread count that executed it.
//!
//! The column layout mirrors the journal's determinism split: the first
//! [`DETERMINISTIC_COLUMNS`] columns are byte-reproducible for equal
//! configurations; the remaining columns are wall-clock KPIs.
//!
//! [`check`] implements the CI gate: group rows into series by
//! [`Row::series_key`] (same bench, scale, world, engine, backend,
//! thread count, model, and config hash — i.e. "the same measurement,
//! repeated"), compare the
//! newest row of each series against the mean of its predecessors, and
//! flag any drift beyond the KPI's tolerance ([`tolerance_for`]).

use std::collections::BTreeMap;
use std::fs::OpenOptions;
use std::io::{self, Write as _};
use std::path::Path;

/// Schema tag carried in every row's first column. v2 added the
/// `backend`/`threads` provenance columns after `engine`; v3 appended
/// the per-job `setup_s` world-acquisition timing. Older rows in an
/// append-only file simply fail to parse and are skipped by [`load`].
pub const SCHEMA: &str = "pedsim.registry.v3";

/// Number of leading columns that are deterministic (byte-reproducible
/// for equal configurations). The rest are wall-clock KPIs.
pub const DETERMINISTIC_COLUMNS: usize = 17;

/// The registry header. Column order is fixed; new columns may only be
/// appended (with a schema bump) so old rows stay parseable.
pub const HEADER: &str = "schema,config,commit,scale,bench,world,engine,backend,threads,model,\
seed,agents,steps,flux,bands,segregation,gridlock_risk,steps_per_sec,total_ms_per_step,init_ms,\
initial_calc_ms,tour_ms,movement_ms,lifecycle_ms,metrics_ms,setup_s";

/// Total column count.
pub const COLUMNS: usize = DETERMINISTIC_COLUMNS + 9;

/// One registry row. Field order matches the CSV column order.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Schema tag ([`SCHEMA`]).
    pub schema: String,
    /// Scenario configuration fingerprint (16 lower-hex chars).
    pub config: String,
    /// Commit the measurement was taken at.
    pub commit: String,
    /// Benchmark scale preset (`smoke` / `default` / `paper`).
    pub scale: String,
    /// Benchmark name (`step_throughput`, `fundamental_diagram`, ...).
    pub bench: String,
    /// World label (`paper_corridor`, `open_corridor`, `r03/0.25`, ...).
    pub world: String,
    /// Engine (`cpu` / `gpu`).
    pub engine: String,
    /// Backend registry key executing the measurement (`scalar` /
    /// `pooled` / `simt`).
    pub backend: String,
    /// Worker-thread count of the executing backend.
    pub threads: u64,
    /// Movement model (`pso` / `aco`).
    pub model: String,
    /// Base seed of the measurement.
    pub seed: u64,
    /// Agents simulated (final live count for open worlds).
    pub agents: u64,
    /// Steps executed.
    pub steps: u64,
    /// Mean crossings per step over the report window.
    pub flux: f64,
    /// Lane-formation band count (absent when not measured).
    pub bands: Option<f64>,
    /// Group segregation index in `[0, 1]` (absent when not measured).
    pub segregation: Option<f64>,
    /// Gridlock early-warning gauge in `[0, 1]` (absent when not
    /// measured).
    pub gridlock_risk: Option<f64>,
    /// Simulation steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Mean wall milliseconds per step.
    pub total_ms_per_step: f64,
    /// Mean wall milliseconds per step in each pipeline stage, in stage
    /// order (init, initial_calc, tour, movement, lifecycle, metrics).
    pub stage_ms: [f64; 6],
    /// Wall seconds the job spent acquiring its compiled world (a cold
    /// compile on a world-cache miss, a cache fetch on a hit). Per job,
    /// not per step.
    pub setup_s: f64,
}

fn csv_f64(v: f64) -> String {
    // `Display` round-trips f64 exactly and never emits a comma.
    format!("{v}")
}

fn csv_opt(v: Option<f64>) -> String {
    v.map(csv_f64).unwrap_or_default()
}

impl Row {
    /// Render as one CSV line (no trailing newline).
    pub fn csv_line(&self) -> String {
        let mut cols: Vec<String> = vec![
            self.schema.clone(),
            self.config.clone(),
            self.commit.clone(),
            self.scale.clone(),
            self.bench.clone(),
            self.world.clone(),
            self.engine.clone(),
            self.backend.clone(),
            self.threads.to_string(),
            self.model.clone(),
            self.seed.to_string(),
            self.agents.to_string(),
            self.steps.to_string(),
            csv_f64(self.flux),
            csv_opt(self.bands),
            csv_opt(self.segregation),
            csv_opt(self.gridlock_risk),
            csv_f64(self.steps_per_sec),
            csv_f64(self.total_ms_per_step),
        ];
        cols.extend(self.stage_ms.iter().map(|&m| csv_f64(m)));
        cols.push(csv_f64(self.setup_s));
        debug_assert_eq!(cols.len(), COLUMNS);
        cols.join(",")
    }

    /// The deterministic prefix of the rendered row — the first
    /// [`DETERMINISTIC_COLUMNS`] columns, which must be byte-identical
    /// across repeat runs of the same configuration at the same commit.
    pub fn deterministic_prefix(&self) -> String {
        let line = self.csv_line();
        line.splitn(DETERMINISTIC_COLUMNS + 1, ',')
            .take(DETERMINISTIC_COLUMNS)
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parse one CSV line; `None` for the header or malformed rows.
    pub fn parse(line: &str) -> Option<Row> {
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != COLUMNS || cols[0] != SCHEMA {
            return None;
        }
        let f = |s: &str| s.parse::<f64>().ok();
        let opt = |s: &str| {
            if s.is_empty() {
                Some(None)
            } else {
                s.parse::<f64>().ok().map(Some)
            }
        };
        let mut stage_ms = [0.0; 6];
        for (slot, col) in stage_ms.iter_mut().zip(&cols[19..25]) {
            *slot = f(col)?;
        }
        Some(Row {
            schema: cols[0].to_owned(),
            config: cols[1].to_owned(),
            commit: cols[2].to_owned(),
            scale: cols[3].to_owned(),
            bench: cols[4].to_owned(),
            world: cols[5].to_owned(),
            engine: cols[6].to_owned(),
            backend: cols[7].to_owned(),
            threads: cols[8].parse().ok()?,
            model: cols[9].to_owned(),
            seed: cols[10].parse().ok()?,
            agents: cols[11].parse().ok()?,
            steps: cols[12].parse().ok()?,
            flux: f(cols[13])?,
            bands: opt(cols[14])?,
            segregation: opt(cols[15])?,
            gridlock_risk: opt(cols[16])?,
            steps_per_sec: f(cols[17])?,
            total_ms_per_step: f(cols[18])?,
            stage_ms,
            setup_s: f(cols[25])?,
        })
    }

    /// The series key: rows sharing it are repeats of the same
    /// measurement and may be compared for regressions. Commit and seed
    /// are deliberately *excluded* — comparing across commits is the
    /// whole point, and the seed is part of the config fingerprint.
    pub fn series_key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/t{}/{}/{}",
            self.bench,
            self.scale,
            self.world,
            self.engine,
            self.backend,
            self.threads,
            self.model,
            self.config
        )
    }
}

/// Append rows to the registry at `path`, writing the header first when
/// the file is new or empty. Parent directories are created.
pub fn append(path: &Path, rows: &[Row]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let needs_header = std::fs::metadata(path)
        .map(|m| m.len() == 0)
        .unwrap_or(true);
    let mut file = OpenOptions::new().create(true).append(true).open(path)?;
    let mut text = String::new();
    if needs_header {
        text.push_str(HEADER);
        text.push('\n');
    }
    for row in rows {
        text.push_str(&row.csv_line());
        text.push('\n');
    }
    file.write_all(text.as_bytes())
}

/// Load every parseable row from the registry at `path`, oldest first.
/// The header and malformed lines are skipped (append-only files from
/// older schemas must not poison newer readers).
pub fn load(path: &Path) -> io::Result<Vec<Row>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text.lines().filter_map(Row::parse).collect())
}

/// How a KPI's drift is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Only a *drop* beyond tolerance is a regression (throughput, flux).
    HigherIsBetter,
    /// Only a *rise* beyond tolerance is a regression (latencies).
    LowerIsBetter,
    /// Any drift beyond tolerance is a regression (deterministic
    /// physics observables, which should not move at all).
    TwoSided,
}

/// Per-KPI tolerance: drift is allowed up to
/// `max(abs, rel * |baseline|)` in the benign direction(s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative slack as a fraction of the baseline.
    pub rel: f64,
    /// Absolute slack floor (guards near-zero baselines).
    pub abs: f64,
    /// Which drift direction counts as a regression.
    pub direction: Direction,
}

impl Tolerance {
    /// The drift allowance for a given baseline value.
    pub fn allowance(&self, baseline: f64) -> f64 {
        (self.rel * baseline.abs()).max(self.abs)
    }
}

/// Every KPI [`check`] understands, in registry column order.
pub const KPIS: &[&str] = &[
    "flux",
    "bands",
    "segregation",
    "gridlock_risk",
    "steps_per_sec",
    "total_ms_per_step",
    "init_ms",
    "initial_calc_ms",
    "tour_ms",
    "movement_ms",
    "lifecycle_ms",
    "metrics_ms",
    "setup_s",
];

/// The tolerance table (documented in DESIGN.md §12). Wall-clock KPIs
/// get wide relative bands — CI machines are noisy neighbors —
/// while deterministic physics observables get an exact two-sided gate.
pub fn tolerance_for(kpi: &str) -> Option<Tolerance> {
    let t = match kpi {
        "steps_per_sec" => Tolerance {
            rel: 0.5,
            abs: 0.0,
            direction: Direction::HigherIsBetter,
        },
        "total_ms_per_step" | "init_ms" | "initial_calc_ms" | "tour_ms" | "movement_ms"
        | "lifecycle_ms" | "metrics_ms" => Tolerance {
            rel: 0.6,
            abs: 0.05,
            direction: Direction::LowerIsBetter,
        },
        "flux" => Tolerance {
            rel: 0.25,
            abs: 0.2,
            direction: Direction::HigherIsBetter,
        },
        // Per-job world-acquisition time. The band is deliberately very
        // wide: a series legitimately mixes cold compiles with cache hits
        // (e.g. the CI ladder runs once uncached, once cached), so only a
        // gross blow-up — compilation accidentally re-entering the replica
        // path — should trip the gate.
        "setup_s" => Tolerance {
            rel: 3.0,
            abs: 0.05,
            direction: Direction::LowerIsBetter,
        },
        "bands" | "segregation" | "gridlock_risk" => Tolerance {
            rel: 0.0,
            abs: 1e-9,
            direction: Direction::TwoSided,
        },
        _ => return None,
    };
    Some(t)
}

/// Extract a KPI value from a row; `None` when the row did not measure
/// it.
pub fn kpi_value(row: &Row, kpi: &str) -> Option<f64> {
    match kpi {
        "flux" => Some(row.flux),
        "bands" => row.bands,
        "segregation" => row.segregation,
        "gridlock_risk" => row.gridlock_risk,
        "steps_per_sec" => Some(row.steps_per_sec),
        "total_ms_per_step" => Some(row.total_ms_per_step),
        "init_ms" => Some(row.stage_ms[0]),
        "initial_calc_ms" => Some(row.stage_ms[1]),
        "tour_ms" => Some(row.stage_ms[2]),
        "movement_ms" => Some(row.stage_ms[3]),
        "lifecycle_ms" => Some(row.stage_ms[4]),
        "metrics_ms" => Some(row.stage_ms[5]),
        "setup_s" => Some(row.setup_s),
        _ => None,
    }
}

/// Outcome of checking one series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Latest value within tolerance of the baseline.
    Pass,
    /// Fewer than two measurements (or the KPI was not recorded) —
    /// nothing to compare, not a failure.
    Insufficient,
    /// Latest value drifted beyond tolerance in a bad direction.
    Regression,
}

/// One series' comparison result.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// The series compared ([`Row::series_key`]).
    pub series: String,
    /// KPI compared.
    pub kpi: String,
    /// Mean of the predecessor measurements (`None` when insufficient).
    pub baseline: Option<f64>,
    /// Newest measurement (`None` when the KPI was not recorded).
    pub latest: Option<f64>,
    /// Allowed drift at this baseline (`None` when insufficient).
    pub allowance: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

impl CheckOutcome {
    /// A one-line human rendering for `registry_query` output.
    pub fn describe(&self) -> String {
        match self.verdict {
            Verdict::Insufficient => {
                format!("{:<12} {}  insufficient history", self.kpi, self.series)
            }
            _ => {
                let b = self.baseline.unwrap_or(f64::NAN);
                let l = self.latest.unwrap_or(f64::NAN);
                let a = self.allowance.unwrap_or(f64::NAN);
                let tag = if self.verdict == Verdict::Pass {
                    "ok"
                } else {
                    "REGRESSION"
                };
                format!(
                    "{:<12} {}  baseline {b:.4}  latest {l:.4}  allowed drift {a:.4}  {tag}",
                    self.kpi, self.series
                )
            }
        }
    }
}

/// Compare the newest measurement of every series against the mean of
/// its up-to-`last - 1` predecessors (taken from the newest `last` rows
/// of the series). Series with fewer than two usable measurements are
/// reported as [`Verdict::Insufficient`], which is not a failure —
/// fresh benchmarks must be able to enter the registry.
pub fn check(rows: &[Row], kpi: &str, last: usize) -> Vec<CheckOutcome> {
    let tol = tolerance_for(kpi);
    let mut series: BTreeMap<String, Vec<&Row>> = BTreeMap::new();
    for row in rows {
        series.entry(row.series_key()).or_default().push(row);
    }
    let mut out = Vec::new();
    for (key, rows) in series {
        let window: Vec<&Row> = rows.iter().rev().take(last.max(2)).rev().copied().collect();
        let values: Vec<Option<f64>> = window.iter().map(|r| kpi_value(r, kpi)).collect();
        let latest = values.last().copied().flatten();
        let prior: Vec<f64> = values[..values.len().saturating_sub(1)]
            .iter()
            .copied()
            .flatten()
            .collect();
        let (verdict, baseline, allowance) = match (latest, prior.is_empty(), tol) {
            (None, _, _) | (_, true, _) | (_, _, None) => (Verdict::Insufficient, None, None),
            (Some(l), false, Some(t)) => {
                let b = prior.iter().sum::<f64>() / prior.len() as f64;
                let a = t.allowance(b);
                let regressed = match t.direction {
                    Direction::HigherIsBetter => l < b - a,
                    Direction::LowerIsBetter => l > b + a,
                    Direction::TwoSided => (l - b).abs() > a,
                };
                let v = if regressed {
                    Verdict::Regression
                } else {
                    Verdict::Pass
                };
                (v, Some(b), Some(a))
            }
        };
        out.push(CheckOutcome {
            series: key,
            kpi: kpi.to_owned(),
            baseline,
            latest,
            allowance,
            verdict,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(steps_per_sec: f64, segregation: Option<f64>) -> Row {
        Row {
            schema: SCHEMA.to_owned(),
            config: "00c0ffee00c0ffee".to_owned(),
            commit: "abc123abc123".to_owned(),
            scale: "smoke".to_owned(),
            bench: "step_throughput".to_owned(),
            world: "paper_corridor".to_owned(),
            engine: "cpu".to_owned(),
            backend: "scalar".to_owned(),
            threads: 1,
            model: "pso".to_owned(),
            seed: 42,
            agents: 64,
            steps: 128,
            flux: 1.5,
            bands: Some(2.0),
            segregation,
            gridlock_risk: Some(0.0),
            steps_per_sec,
            total_ms_per_step: 0.8,
            stage_ms: [0.01, 0.2, 0.3, 0.2, 0.05, 0.04],
            setup_s: 0.002,
        }
    }

    #[test]
    fn csv_roundtrip_preserves_every_field() {
        let r = row(1234.5, Some(0.75));
        let parsed = Row::parse(&r.csv_line()).expect("parse");
        assert_eq!(parsed, r);
        // Absent optionals render as empty columns and survive too.
        let r = row(10.0, None);
        let parsed = Row::parse(&r.csv_line()).expect("parse");
        assert_eq!(parsed, r);
    }

    #[test]
    fn header_and_malformed_lines_do_not_parse() {
        assert!(Row::parse(HEADER).is_none());
        assert!(Row::parse("not,a,row").is_none());
        assert_eq!(HEADER.split(',').count(), COLUMNS);
    }

    #[test]
    fn deterministic_prefix_excludes_wall_columns() {
        let prefix = row(999.0, Some(0.5)).deterministic_prefix();
        assert_eq!(prefix.split(',').count(), DETERMINISTIC_COLUMNS);
        assert!(prefix.contains("00c0ffee00c0ffee"));
        assert!(!prefix.contains("999"));
    }

    #[test]
    fn append_writes_header_exactly_once() {
        let dir = std::env::temp_dir().join("pedsim_obs_registry_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("results").join("registry.csv");
        append(&path, &[row(100.0, Some(0.5))]).unwrap();
        append(&path, &[row(101.0, Some(0.5))]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("schema,").count(), 1);
        let rows = load(&path).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].steps_per_sec, 100.0);
        assert_eq!(rows[1].steps_per_sec, 101.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn check_passes_within_tolerance_and_flags_a_big_drop() {
        // steps_per_sec tolerates a 50% relative drop.
        let fine = vec![row(100.0, None), row(60.0, None)];
        let out = check(&fine, "steps_per_sec", 5);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].verdict, Verdict::Pass);

        let bad = vec![row(100.0, None), row(40.0, None)];
        let out = check(&bad, "steps_per_sec", 5);
        assert_eq!(out[0].verdict, Verdict::Regression);
        assert_eq!(out[0].baseline, Some(100.0));

        // An *increase* is never a steps_per_sec regression.
        let faster = vec![row(100.0, None), row(400.0, None)];
        assert_eq!(check(&faster, "steps_per_sec", 5)[0].verdict, Verdict::Pass);
    }

    #[test]
    fn deterministic_kpis_are_two_sided_and_exact() {
        let drift = vec![row(100.0, Some(0.5)), row(100.0, Some(0.5000001))];
        let out = check(&drift, "segregation", 5);
        assert_eq!(out[0].verdict, Verdict::Regression);
        let exact = vec![row(100.0, Some(0.5)), row(90.0, Some(0.5))];
        assert_eq!(check(&exact, "segregation", 5)[0].verdict, Verdict::Pass);
    }

    #[test]
    fn single_row_and_missing_kpi_are_insufficient_not_failures() {
        let one = vec![row(100.0, None)];
        assert_eq!(
            check(&one, "steps_per_sec", 5)[0].verdict,
            Verdict::Insufficient
        );
        // KPI never recorded in the series.
        let none = vec![row(100.0, None), row(100.0, None)];
        assert_eq!(
            check(&none, "segregation", 5)[0].verdict,
            Verdict::Insufficient
        );
        // Unknown KPI has no tolerance entry.
        assert_eq!(
            check(&none, "not_a_kpi", 5)[0].verdict,
            Verdict::Insufficient
        );
    }

    #[test]
    fn check_windows_to_the_requested_history() {
        // Ancient slow rows outside the `last` window must not drag the
        // baseline down.
        let rows = vec![row(10.0, None), row(100.0, None), row(100.0, None)];
        let out = check(&rows, "steps_per_sec", 2);
        // Window = newest 2 rows: baseline 100, latest 100 -> pass.
        assert_eq!(out[0].baseline, Some(100.0));
        assert_eq!(out[0].verdict, Verdict::Pass);
    }

    #[test]
    fn setup_s_gate_tolerates_cache_mixes_but_flags_blowups() {
        // A cached run following a cold run is a huge relative *drop* —
        // always fine (LowerIsBetter).
        let mut cold = row(100.0, None);
        cold.setup_s = 0.04;
        let mut warm = row(100.0, None);
        warm.setup_s = 0.0001;
        assert_eq!(
            check(&[cold.clone(), warm.clone()], "setup_s", 5)[0].verdict,
            Verdict::Pass
        );
        // The reverse order (cold appended after warm) stays inside the
        // wide band thanks to the absolute floor.
        assert_eq!(
            check(&[warm.clone(), cold.clone()], "setup_s", 5)[0].verdict,
            Verdict::Pass
        );
        // A gross blow-up — compilation re-entering the replica path —
        // still trips the gate.
        let mut blown = row(100.0, None);
        blown.setup_s = 1.5;
        assert_eq!(
            check(&[cold, blown], "setup_s", 5)[0].verdict,
            Verdict::Regression
        );
    }

    #[test]
    fn tolerance_table_covers_every_kpi() {
        for kpi in KPIS {
            assert!(tolerance_for(kpi).is_some(), "no tolerance for {kpi}");
            assert!(kpi_value(&row(1.0, Some(0.5)), kpi).is_some());
        }
        assert!(tolerance_for("bogus").is_none());
    }
}
