//! Deterministic JSONL run journal.
//!
//! A journal is a plain-text file with one JSON object per line — one
//! line per replica run — written in append mode so parallel tools can
//! each contribute records. Two invariants make the format useful as a
//! determinism probe and not just a log:
//!
//! 1. **Fixed key order.** A [`Record`] renders its fields in the order
//!    they were pushed; there is no map in the middle to scramble them.
//!    Equal runs produce byte-equal text.
//! 2. **Wall-clock isolation.** Every noisy, timing-derived field lives
//!    in a single trailing `"wall"` object. [`canonical`] strips that
//!    tail, leaving the byte-reproducible remainder that tests compare
//!    across repeat runs and worker counts.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// Render an `f64` as a JSON value: shortest round-trip decimal via
/// `Display`, with non-finite values mapped to `null` (JSON has no
/// NaN/Infinity literals).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_owned()
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Marker that introduces the wall-clock tail of a rendered record.
const WALL_MARKER: &str = ", \"wall\": {";

/// One journal record: an insertion-ordered JSON object split into a
/// deterministic body and a wall-clock tail.
#[derive(Debug, Clone, Default)]
pub struct Record {
    det: Vec<(String, String)>,
    wall: Vec<(String, String)>,
}

impl Record {
    /// A record opened with its `schema` field — every journal line
    /// starts by identifying its own format version.
    pub fn new(schema: &str) -> Self {
        let mut r = Self::default();
        r.str_field("schema", schema);
        r
    }

    /// Push a string field onto the deterministic body.
    pub fn str_field(&mut self, key: &str, value: &str) {
        let mut v = String::with_capacity(value.len() + 2);
        v.push('"');
        escape_into(&mut v, value);
        v.push('"');
        self.det.push((key.to_owned(), v));
    }

    /// Push a pre-rendered JSON value onto the deterministic body.
    pub fn raw_field(&mut self, key: &str, json: &str) {
        self.det.push((key.to_owned(), json.to_owned()));
    }

    /// Push an integer field onto the deterministic body.
    pub fn u64_field(&mut self, key: &str, value: u64) {
        self.det.push((key.to_owned(), value.to_string()));
    }

    /// Push a float field onto the deterministic body.
    pub fn f64_field(&mut self, key: &str, value: f64) {
        self.det.push((key.to_owned(), json_f64(value)));
    }

    /// Push an optional float field (absent value renders as `null`,
    /// keeping the key set — and hence the byte layout — fixed).
    pub fn opt_f64_field(&mut self, key: &str, value: Option<f64>) {
        let v = value.map(json_f64).unwrap_or_else(|| "null".to_owned());
        self.det.push((key.to_owned(), v));
    }

    /// Push a float onto the wall-clock tail.
    pub fn wall_f64(&mut self, key: &str, value: f64) {
        self.wall.push((key.to_owned(), json_f64(value)));
    }

    /// Push a pre-rendered JSON value onto the wall-clock tail.
    pub fn wall_raw(&mut self, key: &str, json: &str) {
        self.wall.push((key.to_owned(), json.to_owned()));
    }

    /// Render the record as one JSON line (no trailing newline). The
    /// `"wall"` object is appended last, and only when non-empty.
    pub fn line(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, v)) in self.det.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('"');
            escape_into(&mut s, k);
            s.push_str("\": ");
            s.push_str(v);
        }
        if !self.wall.is_empty() {
            s.push_str(WALL_MARKER);
            for (i, (k, v)) in self.wall.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push('"');
                escape_into(&mut s, k);
                s.push_str("\": ");
                s.push_str(v);
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

/// Strip the wall-clock tail from a rendered journal line, returning
/// the byte-reproducible remainder. Lines without a tail pass through
/// unchanged.
pub fn canonical(line: &str) -> String {
    match line.rfind(WALL_MARKER) {
        Some(idx) => {
            let mut s = line[..idx].to_owned();
            s.push('}');
            s
        }
        None => line.to_owned(),
    }
}

/// An append-mode journal writer.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Open (creating if needed) the journal at `path` for appending.
    /// Parent directories are created.
    pub fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { file })
    }

    /// Append one record as a JSONL line.
    pub fn write(&mut self, record: &Record) -> io::Result<()> {
        let mut line = record.line();
        line.push('\n');
        self.file.write_all(line.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_render_in_insertion_order() {
        let mut r = Record::new("test.v1");
        r.str_field("zeta", "z");
        r.u64_field("alpha", 7);
        r.opt_f64_field("gap", None);
        let line = r.line();
        assert_eq!(
            line,
            "{\"schema\": \"test.v1\", \"zeta\": \"z\", \"alpha\": 7, \"gap\": null}"
        );
    }

    #[test]
    fn canonical_strips_only_the_wall_tail() {
        let mut r = Record::new("test.v1");
        r.u64_field("steps", 128);
        r.wall_f64("wall_s", 0.25);
        r.wall_raw("stages", "{\"tour\": 1.5}");
        let line = r.line();
        assert!(line.contains("\"wall\": {\"wall_s\": 0.25, \"stages\": {\"tour\": 1.5}}"));
        let canon = canonical(&line);
        assert_eq!(canon, "{\"schema\": \"test.v1\", \"steps\": 128}");
        // A record with no wall tail is already canonical.
        assert_eq!(canonical(&canon), canon);
    }

    #[test]
    fn json_f64_maps_non_finite_to_null() {
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut r = Record::new("test.v1");
        r.str_field("label", "a\"b\\c\nd");
        assert!(r.line().contains("\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn journal_appends_lines() {
        let dir = std::env::temp_dir().join("pedsim_obs_journal_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("j.jsonl");
        {
            let mut j = Journal::open(&path).unwrap();
            let mut r = Record::new("test.v1");
            r.u64_field("n", 1);
            j.write(&r).unwrap();
        }
        {
            let mut j = Journal::open(&path).unwrap();
            let mut r = Record::new("test.v1");
            r.u64_field("n", 2);
            j.write(&r).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"n\": 1"));
        assert!(lines[1].contains("\"n\": 2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
