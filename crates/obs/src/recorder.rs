//! The telemetry recorder: counters, gauges, fixed-bucket histograms,
//! and a ring-buffered event log.
//!
//! One [`Recorder`] lives inside every engine's step core and is fed
//! from the unified pipeline — per-stage wall-clock durations into
//! histograms, kernel-launch statistics into counters — so CPU and GPU
//! runs report through a single path with a single key vocabulary.
//! Backends with nothing to report for a key pre-register it at zero, so
//! the telemetry *shape* never depends on the engine.
//!
//! Keys are `&'static str` by design: recording sits inside the hot step
//! loop and must not allocate. Storage is `BTreeMap`, so every iteration
//! order (and hence every serialization) is deterministic.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;

/// Default capacity of the event ring.
pub const DEFAULT_EVENT_CAPACITY: usize = 256;

/// Fixed histogram bucket bounds in nanoseconds: powers of four from
/// 1 µs-ish up to ~17 s, plus the implicit overflow bucket. Fixed bounds
/// (rather than adaptive ones) keep merged and serialized histograms
/// comparable across runs and engines.
pub const NS_BUCKET_BOUNDS: [u64; 12] = [
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
    1 << 24,
    1 << 26,
    1 << 28,
    1 << 30,
    1 << 32,
];

/// A fixed-bucket histogram of `u64` samples (nanoseconds by
/// convention), with count/sum/min/max running aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts; bucket `i` holds samples `<= NS_BUCKET_BOUNDS[i]`,
    /// the final slot holds the overflow.
    buckets: [u64; NS_BUCKET_BOUNDS.len() + 1],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; NS_BUCKET_BOUNDS.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        let slot = NS_BUCKET_BOUNDS
            .iter()
            .position(|&b| sample <= b)
            .unwrap_or(NS_BUCKET_BOUNDS.len());
        self.buckets[slot] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(sample);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Per-bucket counts (bounds from [`NS_BUCKET_BOUNDS`], plus the
    /// trailing overflow bucket).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// One entry of the ring-buffered event log: something notable that
/// happened at a step (a spawn burst, a stop-condition trip, a stage
/// spike), kept for post-run inspection without unbounded memory.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Step index the event was recorded at.
    pub step: u64,
    /// Event kind (static vocabulary, e.g. `"lifecycle.spawn"`).
    pub kind: &'static str,
    /// Event payload value.
    pub value: f64,
}

/// The telemetry recorder. See the module docs for the determinism
/// convention: counters and gauges are simulation quantities
/// (bit-reproducible), histograms are wall-clock (noisy).
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    events: VecDeque<Event>,
    event_capacity: usize,
}

impl Recorder {
    /// A fresh recorder with the default event-ring capacity.
    pub fn new() -> Self {
        Self {
            event_capacity: DEFAULT_EVENT_CAPACITY,
            ..Self::default()
        }
    }

    /// Add `by` to counter `key` (creating it at zero).
    pub fn inc(&mut self, key: &'static str, by: u64) {
        *self.counters.entry(key).or_insert(0) += by;
    }

    /// Ensure counter `key` exists (at zero if new) without changing it —
    /// how a backend declares "this statistic is applicable here but I
    /// have nothing to report", so CPU and GPU telemetry share a shape.
    pub fn ensure_counter(&mut self, key: &'static str) {
        self.counters.entry(key).or_insert(0);
    }

    /// Counter value (0 when never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Whether counter `key` has been registered at all.
    pub fn has_counter(&self, key: &str) -> bool {
        self.counters.contains_key(key)
    }

    /// Set gauge `key` to `value` (last write wins).
    pub fn set_gauge(&mut self, key: &'static str, value: f64) {
        self.gauges.insert(key, value);
    }

    /// Gauge value, when set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Record `nanos` into histogram `key` (creating it).
    pub fn observe_ns(&mut self, key: &'static str, nanos: u64) {
        self.histograms.entry(key).or_default().record(nanos);
    }

    /// Histogram under `key`, when any sample has been recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Append an event, evicting the oldest once the ring is full.
    pub fn event(&mut self, step: u64, kind: &'static str, value: f64) {
        if self.events.len() == self.event_capacity.max(1) {
            self.events.pop_front();
        }
        self.events.push_back(Event { step, kind, value });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    /// Counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// The **deterministic** half of the telemetry as a JSON object
    /// (counters then gauges, keys sorted by the underlying maps):
    /// byte-identical for equal configurations.
    pub fn deterministic_json(&self) -> String {
        let mut s = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{k}\": {v}");
        }
        s.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{k}\": {}", crate::journal::json_f64(*v));
        }
        s.push_str("}}");
        s
    }

    /// The wall-clock half of the telemetry as a JSON object: one entry
    /// per histogram with count/mean/max in milliseconds. Noisy by
    /// nature; belongs inside a journal record's `"wall"` tail.
    pub fn wall_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "\"{k}\": {{\"count\": {}, \"mean_ms\": {}, \"max_ms\": {}}}",
                h.count(),
                crate::journal::json_f64(h.mean() / 1e6),
                crate::journal::json_f64(h.max() as f64 / 1e6),
            );
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_preregister() {
        let mut r = Recorder::new();
        assert_eq!(r.counter("k.launches"), 0);
        assert!(!r.has_counter("k.launches"));
        r.ensure_counter("k.launches");
        assert!(r.has_counter("k.launches"));
        assert_eq!(r.counter("k.launches"), 0);
        r.inc("k.launches", 3);
        r.inc("k.launches", 2);
        assert_eq!(r.counter("k.launches"), 5);
    }

    #[test]
    fn histogram_buckets_and_aggregates() {
        let mut h = Histogram::default();
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(100); // first bucket (<= 1024)
        h.record(2_000); // second bucket
        h.record(u64::MAX); // overflow bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[NS_BUCKET_BOUNDS.len()], 1);
    }

    #[test]
    fn event_ring_is_bounded() {
        let mut r = Recorder::new();
        for step in 0..(DEFAULT_EVENT_CAPACITY as u64 + 10) {
            r.event(step, "e", 1.0);
        }
        let events: Vec<_> = r.events().collect();
        assert_eq!(events.len(), DEFAULT_EVENT_CAPACITY);
        assert_eq!(events[0].step, 10, "oldest entries evicted first");
    }

    #[test]
    fn deterministic_json_is_sorted_and_stable() {
        let mut a = Recorder::new();
        a.inc("z.last", 1);
        a.inc("a.first", 2);
        a.set_gauge("flux", 0.5);
        let mut b = Recorder::new();
        b.set_gauge("flux", 0.5);
        b.inc("a.first", 2);
        b.inc("z.last", 1);
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        let j = a.deterministic_json();
        assert!(j.find("a.first").unwrap() < j.find("z.last").unwrap());
        assert!(j.contains("\"flux\": 0.5"));
    }

    #[test]
    fn wall_json_reports_histograms() {
        let mut r = Recorder::new();
        r.observe_ns("stage.tour_ns", 2_000_000);
        r.observe_ns("stage.tour_ns", 4_000_000);
        let j = r.wall_json();
        assert!(j.contains("\"stage.tour_ns\""));
        assert!(j.contains("\"count\": 2"));
        assert!(j.contains("\"mean_ms\": 3"));
    }
}
