//! Multi-group acceptance: the N-directional-group generalisation keeps
//! every legacy trajectory bit-identical, the new registry worlds run
//! identically on both engines, the relabelled `crossing` world counts
//! its orthogonal stream through the target mask, and spawn placement
//! stays inside disjoint regions for any group count.

use pedsim::core::engine::cpu::CpuEngine;
use pedsim::core::validate::engines_agree;
use pedsim::grid::cell::Group;
use pedsim::prelude::*;
use pedsim::scenario::registry;

/// FNV-1a over the trajectory state: the environment matrix plus every
/// agent position. Stable across platforms (all inputs are exact
/// integer/deterministic data).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn trajectory_hash(e: &impl Engine) -> u64 {
    let mat = e.mat_snapshot();
    let (row, col) = e.positions();
    let mut bytes: Vec<u8> = mat.as_slice().to_vec();
    for v in row.iter().chain(col.iter()) {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a(bytes)
}

/// The pre-refactor golden hashes, captured on the two-group codebase
/// immediately before the N-group generalisation (same seeds, same step
/// counts, CPU reference engine). Legacy worlds must reproduce them bit
/// for bit: same labels, same RNG streams, same trajectories.
#[test]
fn legacy_trajectories_match_pre_refactor_goldens() {
    let cases: [(&str, SimConfig, u64, u64); 5] = {
        let env = EnvConfig::small(32, 32, 30).with_seed(42);
        [
            (
                "corridor/lem",
                SimConfig::new(env, ModelKind::lem()),
                60,
                0x8136e34d28a027bf,
            ),
            (
                "corridor/aco",
                SimConfig::new(env, ModelKind::aco()),
                60,
                0xbe1dfff579672886,
            ),
            (
                "paper_corridor/lem",
                SimConfig::from_scenario(&registry::paper_corridor(&env), ModelKind::lem()),
                60,
                0x8136e34d28a027bf,
            ),
            (
                "doorway/lem",
                SimConfig::from_scenario(
                    &registry::doorway(32, 32, 60, 5).with_seed(7),
                    ModelKind::lem(),
                ),
                60,
                0x37c39781e339da30,
            ),
            (
                "pillar_hall/aco",
                SimConfig::from_scenario(
                    &registry::pillar_hall(48, 48, 120, 6).with_seed(9),
                    ModelKind::aco(),
                ),
                40,
                0xce7520bba427f75f,
            ),
        ]
    };
    for (name, cfg, steps, golden) in cases {
        let mut e = CpuEngine::new(cfg);
        e.run(steps);
        assert_eq!(
            trajectory_hash(&e),
            golden,
            "{name}: trajectory diverged from the pre-refactor build"
        );
    }
}

#[test]
fn engines_agree_on_four_way_crossing() {
    for model in [ModelKind::lem(), ModelKind::aco()] {
        let scenario = registry::four_way_crossing(32, 40).with_seed(13);
        assert_eq!(scenario.n_groups(), 4);
        let cfg = SimConfig::from_scenario(&scenario, model).with_checked(true);
        assert_eq!(
            engines_agree(cfg, 40, 10, 4),
            None,
            "{} diverged on four_way_crossing",
            model.name()
        );
    }
}

#[test]
fn engines_agree_on_t_junction_merge() {
    for model in [ModelKind::lem(), ModelKind::aco()] {
        let scenario = registry::t_junction_merge(32, 40).with_seed(19);
        let cfg = SimConfig::from_scenario(&scenario, model).with_checked(true);
        assert_eq!(
            engines_agree(cfg, 40, 10, 3),
            None,
            "{} diverged on t_junction_merge",
            model.name()
        );
    }
}

#[test]
fn engines_agree_on_asymmetric_corridor() {
    // Uneven index ranges on the row fast path — the exact case the old
    // `agents_per_side * 2` bookkeeping mis-grouped.
    let scenario = registry::asymmetric_corridor(32, 32, 70, 25).with_seed(29);
    assert!(scenario.uses_row_fast_path());
    let cfg = SimConfig::from_scenario(&scenario, ModelKind::aco()).with_checked(true);
    assert_eq!(engines_agree(cfg, 50, 10, 4), None);
}

#[test]
fn crossing_counts_its_orthogonal_stream_through_the_mask() {
    // Satellite fix: the left→right stream used to be labelled as a
    // "bottom" (upward) group, so `crossed_bottom` and the row-based
    // fallback misdescribed it. Under the mask, a horizontal agent counts
    // exactly when it reaches the right-edge column band.
    let scenario = registry::crossing(32, 60).with_seed(3);
    let side = scenario.width();
    let mask = scenario.target_mask();
    let horizontal_bit = Group::BOTTOM.target_bit();
    for r in 0..side {
        for c in 0..side {
            let in_band = c >= side - scenario.target(Group::BOTTOM).len() / side;
            assert_eq!(
                mask.get(r, c) & horizontal_bit != 0,
                in_band,
                "mask bit wrong at ({r},{c})"
            );
        }
    }
    let cfg = SimConfig::from_scenario(&scenario, ModelKind::aco());
    let mut e = CpuEngine::new(cfg);
    e.run(400);
    let m = e.metrics().expect("metrics");
    assert!(m.crossed(Group::TOP) > 0, "vertical stream never arrived");
    assert!(
        m.crossed(Group::BOTTOM) > 0,
        "horizontal stream never arrived"
    );
    // Per-group attribution is exact: every counted horizontal arrival is
    // an agent of the horizontal stream standing (or having stood) in the
    // right-edge band — cross-check against the environment's own count.
    let env = e.environment();
    assert!(m.crossed(Group::BOTTOM) >= env.crossed_count(Group::BOTTOM));
    assert_eq!(
        m.throughput(),
        m.crossed(Group::TOP) + m.crossed(Group::BOTTOM)
    );
}

#[test]
fn four_way_streams_all_make_progress() {
    let scenario = registry::four_way_crossing(32, 30).with_seed(8);
    let cfg = SimConfig::from_scenario(&scenario, ModelKind::lem());
    let mut e = CpuEngine::new(cfg);
    e.run(300);
    let m = e.metrics().expect("metrics");
    for gi in 0..4 {
        assert!(
            m.crossed(Group::new(gi)) > 0,
            "stream {gi} never arrived (throughput {})",
            m.throughput()
        );
    }
}

mod placement_properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// For every registry world (open-boundary ones included): the N
        /// spawn regions are pairwise disjoint and disjoint from walls,
        /// and the built environment seats each group's initial agents
        /// only inside its own spawn region.
        #[test]
        fn spawn_regions_stay_disjoint_and_respected(
            seed in 0u64..1000,
            world_idx in 0usize..9,
            per in 4usize..20,
        ) {
            let name = registry::names()[world_idx];
            let scenario = pedsim::scenario::sweep::build_world(name, 32, per)
                .expect("registry world")
                .with_seed(seed);
            let walls: HashSet<(u16, u16)> = scenario.walls().iter().copied().collect();
            let mut seen: HashSet<(u16, u16)> = HashSet::new();
            for g in 0..scenario.n_groups() {
                for &cell in scenario.spawn(Group::new(g)).cells() {
                    prop_assert!(!walls.contains(&cell), "{name}: spawn on wall {cell:?}");
                    prop_assert!(seen.insert(cell), "{name}: spawn overlap at {cell:?}");
                }
            }
            let env = scenario.build_environment();
            prop_assert!(env.check_consistency().is_ok());
            for g in 0..scenario.n_groups() {
                let group = Group::new(g);
                let start = env.group_start(group);
                for i in start..start + env.group_size(group) {
                    // Every slot (live or pooled) carries its group label;
                    // only live slots have a grid position to check.
                    prop_assert_eq!(env.props.id[i], group.label());
                    if !env.is_alive(i) {
                        continue;
                    }
                    let (r, c) = env.props.position(i);
                    prop_assert!(
                        scenario.spawn(group).contains(r, c),
                        "{name}: agent {i} of group {g} spawned outside its region at ({r},{c})"
                    );
                }
            }
        }
    }
}
