//! Cross-crate integration: the CPU reference, the sequential virtual GPU,
//! and the parallel virtual GPU must produce bit-identical trajectories
//! (the strong form of the paper's §VI CPU-vs-GPU consistency check).

use pedsim::prelude::*;

fn config(model: ModelKind, seed: u64, per_side: usize) -> SimConfig {
    SimConfig::new(EnvConfig::small(48, 48, per_side).with_seed(seed), model).with_checked(true)
}

#[test]
fn lem_engines_agree_sparse() {
    assert_eq!(
        engines_agree(config(ModelKind::lem(), 1, 40), 60, 10, 4),
        None
    );
}

#[test]
fn lem_engines_agree_dense() {
    assert_eq!(
        engines_agree(config(ModelKind::lem(), 2, 400), 40, 10, 4),
        None
    );
}

#[test]
fn aco_engines_agree_sparse() {
    assert_eq!(
        engines_agree(config(ModelKind::aco(), 3, 40), 60, 10, 4),
        None
    );
}

#[test]
fn aco_engines_agree_dense() {
    assert_eq!(
        engines_agree(config(ModelKind::aco(), 4, 400), 40, 10, 4),
        None
    );
}

#[test]
fn agreement_holds_with_nondefault_parameters() {
    let model = ModelKind::Aco(AcoParams {
        alpha: 2.0,
        beta: 0.5,
        rho: 0.3,
        q: 2.0,
        tau0: 0.5,
        forward_priority: false,
    });
    assert_eq!(engines_agree(config(model, 5, 150), 40, 10, 3), None);
}

#[test]
fn agreement_holds_with_scan_range_extension() {
    let model = ModelKind::Lem(LemParams {
        scan_range: 3,
        ..LemParams::default()
    });
    assert_eq!(engines_agree(config(model, 6, 150), 40, 10, 3), None);
}

#[test]
fn worker_count_does_not_change_results() {
    // 1, 2, and 7 workers must match the sequential policy.
    for workers in [1usize, 2, 7] {
        assert_eq!(
            engines_agree(config(ModelKind::aco(), 7, 200), 25, 25, workers),
            None,
            "diverged with {workers} workers"
        );
    }
}
