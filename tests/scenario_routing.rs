//! Scenario-subsystem acceptance: the declarative worlds run on both
//! engines, obstacle routing never violates wall cells, the flow field is
//! a true descent potential, and `paper_corridor` reproduces the legacy
//! corridor bit for bit.

use pedsim::grid::cell::{Group, CELL_WALL};
use pedsim::grid::{GridDistanceField, NEIGHBOR_OFFSETS};
use pedsim::prelude::*;
use pedsim::scenario::registry;

/// The registry scenarios at test scale (all seven worlds, multi-group
/// and asymmetric included).
fn registry_worlds(seed: u64) -> Vec<Scenario> {
    vec![
        registry::paper_corridor(&EnvConfig::small(32, 32, 60).with_seed(seed)),
        registry::doorway(32, 32, 60, 4).with_seed(seed),
        registry::pillar_hall(32, 32, 60, 5).with_seed(seed),
        registry::crossing(32, 80).with_seed(seed),
        registry::four_way_crossing(32, 40).with_seed(seed),
        registry::t_junction_merge(32, 48).with_seed(seed),
        registry::asymmetric_corridor(32, 32, 80, 30).with_seed(seed),
    ]
}

/// Assert no agent stands on a wall cell and walls survived untouched.
fn assert_walls_respected(env: &Environment, scenario: &Scenario) {
    let expected_walls = scenario.walls().len();
    assert_eq!(
        env.mat.count(CELL_WALL),
        expected_walls,
        "{}: wall count changed",
        scenario.name()
    );
    for i in 1..=env.total_agents() {
        let (r, c) = env.props.position(i);
        assert!(
            !scenario.is_wall(r as usize, c as usize),
            "{}: agent {i} stands on wall ({r},{c})",
            scenario.name()
        );
    }
}

#[test]
fn all_registry_scenarios_run_on_both_engines() {
    for scenario in registry_worlds(17) {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let cfg = SimConfig::from_scenario(&scenario, model).with_checked(true);
            let mut cpu = CpuEngine::new(cfg.clone());
            let mut gpu = GpuEngine::new(cfg, pedsim::simt::Device::parallel());
            cpu.run(40);
            gpu.run(40);
            let cpu_env = cpu.environment();
            cpu_env
                .check_consistency()
                .unwrap_or_else(|e| panic!("{} {} cpu: {e}", scenario.name(), model.name()));
            assert_walls_respected(cpu_env, &scenario);
            let gpu_env = gpu.download_environment();
            gpu_env
                .check_consistency()
                .unwrap_or_else(|e| panic!("{} {} gpu: {e}", scenario.name(), model.name()));
            assert_walls_respected(&gpu_env, &scenario);
            assert_eq!(
                cpu.mat_snapshot(),
                gpu.mat_snapshot(),
                "{} {}: engines diverged",
                scenario.name(),
                model.name()
            );
        }
    }
}

#[test]
fn engines_agree_on_obstacle_scenarios() {
    // The acceptance bar: exact CPU/GPU agreement on a world with interior
    // obstacles (grid flow-field routing), under the parallel policy.
    for (model, workers) in [(ModelKind::lem(), 4), (ModelKind::aco(), 3)] {
        let scenario = registry::doorway(32, 32, 80, 3).with_seed(23);
        let cfg = SimConfig::from_scenario(&scenario, model).with_checked(true);
        assert_eq!(
            engines_agree(cfg, 40, 10, workers),
            None,
            "{} diverged on the doorway scenario",
            model.name()
        );
    }
    // And on the orthogonal-streams world (no walls, non-band targets).
    let cfg = SimConfig::from_scenario(&registry::crossing(28, 60).with_seed(5), ModelKind::aco())
        .with_checked(true);
    assert_eq!(engines_agree(cfg, 30, 10, 4), None, "crossing diverged");
}

#[test]
fn paper_corridor_reproduces_legacy_trajectories_exactly() {
    // Same seed, same model: the scenario path must be bit-identical to
    // the legacy EnvConfig path on both engines — placement, routing
    // (row-table fast path), and metrics.
    for model in [ModelKind::lem(), ModelKind::aco()] {
        let env_cfg = EnvConfig::small(40, 40, 150).with_seed(91);
        let legacy = SimConfig::new(env_cfg, model).with_checked(true);
        let scenic =
            SimConfig::from_scenario(&registry::paper_corridor(&env_cfg), model).with_checked(true);

        let mut legacy_gpu = GpuEngine::new(legacy.clone(), pedsim::simt::Device::parallel());
        let mut scenic_gpu = GpuEngine::new(scenic.clone(), pedsim::simt::Device::parallel());
        legacy_gpu.run(60);
        scenic_gpu.run(60);
        assert_eq!(
            legacy_gpu.mat_snapshot(),
            scenic_gpu.mat_snapshot(),
            "{}: scenario corridor diverged from legacy",
            model.name()
        );
        assert_eq!(legacy_gpu.positions(), scenic_gpu.positions());
        assert_eq!(
            legacy_gpu.metrics().unwrap().throughput(),
            scenic_gpu.metrics().unwrap().throughput()
        );

        let mut legacy_cpu = CpuEngine::new(legacy);
        legacy_cpu.run(60);
        assert_eq!(legacy_cpu.mat_snapshot(), scenic_gpu.mat_snapshot());
    }
}

#[test]
fn crossing_streams_reach_their_targets() {
    let cfg = SimConfig::from_scenario(&registry::crossing(32, 60).with_seed(3), ModelKind::aco());
    let mut e = GpuEngine::new(cfg, pedsim::simt::Device::parallel());
    e.run(400);
    let m = e.metrics().expect("metrics");
    // Both the downward and the rightward stream must make it across.
    assert!(m.crossed_top() > 0, "vertical stream never arrived");
    assert!(m.crossed_bottom() > 0, "horizontal stream never arrived");
}

#[test]
fn doorway_bottleneck_still_flows() {
    // A 2-cell doorway chokes but must not deadlock at moderate load.
    let cfg = SimConfig::from_scenario(
        &registry::doorway(32, 32, 40, 2).with_seed(7),
        ModelKind::aco(),
    );
    let mut e = GpuEngine::new(cfg, pedsim::simt::Device::parallel());
    e.run(600);
    assert!(
        e.metrics().expect("metrics").throughput() > 0,
        "nobody made it through the doorway"
    );
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

        /// No agent is ever placed on, or moves into, an obstacle cell —
        /// across random doorway/pillar worlds, models, seeds, and steps.
        #[test]
        fn agents_never_touch_walls(
            seed in 0u64..500,
            gap in 1usize..8,
            spacing in 3usize..8,
            pillars in proptest::prelude::any::<bool>(),
            aco in proptest::prelude::any::<bool>(),
        ) {
            let scenario = if pillars {
                registry::pillar_hall(28, 28, 40, spacing).with_seed(seed)
            } else {
                registry::doorway(28, 28, 40, gap).with_seed(seed)
            };
            let model = if aco { ModelKind::aco() } else { ModelKind::lem() };
            let cfg = SimConfig::from_scenario(&scenario, model).with_checked(true);
            let mut e = CpuEngine::new(cfg);
            for _ in 0..15 {
                e.step();
                let env = e.environment();
                prop_assert!(env.check_consistency().is_ok());
                for i in 1..=env.total_agents() {
                    let (r, c) = env.props.position(i);
                    prop_assert!(
                        !scenario.is_wall(r as usize, c as usize),
                        "agent {i} on wall ({r},{c})"
                    );
                }
            }
        }

        /// The flow field is a descent potential: from every reachable
        /// passable cell, the front cell (distance-argmin neighbour — the
        /// step forward-priority takes) never increases the distance to
        /// target, and strictly decreases it away from the target region.
        #[test]
        fn flow_field_descends_along_chosen_steps(
            seed in 0u64..200,
            gap in 1usize..9,
        ) {
            let scenario = registry::doorway(24, 24, 30, gap).with_seed(seed);
            let field = GridDistanceField::compute(
                24,
                24,
                |r, c| scenario.is_wall(r, c),
                &[
                    scenario.target(Group::TOP).cells(),
                    scenario.target(Group::BOTTOM).cells(),
                ],
            );
            let view = field.dist_ref();
            for g in Group::BOTH {
                for r in 0..24usize {
                    for c in 0..24usize {
                        if scenario.is_wall(r, c) || !field.reachable(g, r, c) {
                            continue;
                        }
                        let here = field.potential(g, r, c);
                        let fk = view.front_k(g, r as i64, c as i64);
                        let (dr, dc) = NEIGHBOR_OFFSETS[fk];
                        let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                        prop_assume!(nr >= 0 && nc >= 0 && (nr as usize) < 24 && (nc as usize) < 24);
                        let next = field.potential(g, nr as usize, nc as usize);
                        prop_assert!(
                            next <= here,
                            "{g:?} ({r},{c}): front step climbs {here} -> {next}"
                        );
                        if !scenario.target(g).contains(r as u16, c as u16) {
                            prop_assert!(
                                next < here,
                                "{g:?} ({r},{c}): no strict descent off-target"
                            );
                        }
                    }
                }
            }
        }
    }
}
