//! Property-based integration tests over the public API: for arbitrary
//! scenario shapes, the simulation must conserve agents, keep one agent
//! per cell, move at most one cell per step, and stay consistent across
//! its three matrices.

use pedsim::prelude::*;
use proptest::prelude::*;

fn arbitrary_model() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        (0.3f64..3.0, any::<bool>()).prop_map(|(sigma, fp)| {
            ModelKind::Lem(LemParams {
                sigma,
                forward_priority: fp,
                scan_range: 1,
            })
        }),
        (0.2f32..2.0, 0.5f32..4.0, 0.005f32..0.5, any::<bool>()).prop_map(
            |(alpha, beta, rho, fp)| {
                ModelKind::Aco(AcoParams {
                    alpha,
                    beta,
                    rho,
                    q: 4.0,
                    tau0: 0.1,
                    forward_priority: fp,
                })
            }
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case runs a full simulation
        .. ProptestConfig::default()
    })]

    /// After any number of steps the environment remains internally
    /// consistent: every agent on exactly one cell, labels/indices/
    /// properties in agreement, counts conserved.
    #[test]
    fn world_stays_consistent(
        seed in 0u64..1_000,
        per_side in 10usize..220,
        steps in 1u64..40,
        model in arbitrary_model(),
    ) {
        let env = EnvConfig::small(40, 40, per_side).with_seed(seed);
        let mut e = CpuEngine::new(SimConfig::new(env, model).with_checked(true));
        e.run(steps);
        prop_assert!(e.environment().check_consistency().is_ok());
    }

    /// Each step moves an agent by at most one cell in each axis.
    #[test]
    fn moves_bounded_by_move_range(
        seed in 0u64..1_000,
        per_side in 10usize..200,
        model in arbitrary_model(),
    ) {
        let env = EnvConfig::small(40, 40, per_side).with_seed(seed);
        let mut e = CpuEngine::new(SimConfig::new(env, model).with_checked(true));
        let (mut pr, mut pc) = e.positions();
        for _ in 0..10 {
            e.step();
            let (r, c) = e.positions();
            for i in 1..r.len() {
                let dr = (i64::from(r[i]) - i64::from(pr[i])).abs();
                let dc = (i64::from(c[i]) - i64::from(pc[i])).abs();
                prop_assert!(dr <= 1 && dc <= 1);
            }
            pr = r;
            pc = c;
        }
    }

    /// Throughput is monotone non-decreasing in time and bounded by the
    /// population.
    #[test]
    fn throughput_monotone_and_bounded(
        seed in 0u64..1_000,
        per_side in 20usize..200,
    ) {
        let env = EnvConfig::small(40, 40, per_side).with_seed(seed);
        let mut e = CpuEngine::new(SimConfig::new(env, ModelKind::aco()).with_checked(true));
        let mut last = 0usize;
        for _ in 0..8 {
            e.run(5);
            let t = e.metrics().expect("metrics").throughput();
            prop_assert!(t >= last);
            prop_assert!(t <= 2 * per_side);
            last = t;
        }
    }

    /// The parallel virtual GPU agrees with the CPU reference for random
    /// configurations (not just the hand-picked ones).
    #[test]
    fn engines_agree_on_random_configs(
        seed in 0u64..500,
        per_side in 10usize..150,
        model in arbitrary_model(),
    ) {
        let cfg = SimConfig::new(
            EnvConfig::small(40, 40, per_side).with_seed(seed),
            model,
        ).with_checked(true);
        prop_assert_eq!(engines_agree(cfg, 12, 6, 4), None);
    }
}
