//! Failure injection: the substrate must *reject* what the paper's design
//! rules out — write races, invalid launches, inconsistent worlds.

use pedsim::prelude::*;
use pedsim::simt::exec::{BlockCtx, BlockKernel, LaunchConfig};
use pedsim::simt::memory::ScatterBuffer;
use pedsim::simt::{Device, Dim2, LaunchError};

/// A kernel that violates scatter-to-gather: every thread writes slot 0.
struct RacyKernel<'a> {
    out: &'a ScatterBuffer<u32>,
}

impl BlockKernel for RacyKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let view = self.out.view();
        ctx.threads(|t| {
            view.write(0, t.global_linear() as u32);
        });
    }
}

#[test]
#[should_panic(expected = "scatter-to-gather violation")]
fn conflict_detector_catches_write_races() {
    let out = ScatterBuffer::<u32>::zeroed(16, true);
    out.begin_epoch();
    let device = Device::sequential();
    let cfg = LaunchConfig::new(Dim2::new(1, 1), Dim2::new(16, 1));
    let _ = device.launch(&cfg, &RacyKernel { out: &out });
}

#[test]
fn invalid_launches_are_rejected_not_executed() {
    let device = Device::sequential();
    let out = ScatterBuffer::<u32>::zeroed(1, false);
    // Zero-sized grid.
    let empty = LaunchConfig::new(Dim2::new(0, 0), Dim2::square(16));
    assert!(matches!(
        device.launch(&empty, &RacyKernel { out: &out }),
        Err(LaunchError::EmptyLaunch { .. })
    ));
    // Block larger than the device allows.
    let huge = LaunchConfig::new(Dim2::square(1), Dim2::new(2048, 1));
    assert!(matches!(
        device.launch(&huge, &RacyKernel { out: &out }),
        Err(LaunchError::BlockTooLarge { .. })
    ));
}

#[test]
fn consistency_checker_flags_corrupted_worlds() {
    let mut env = Environment::new(&EnvConfig::small(32, 32, 20).with_seed(1));
    assert!(env.check_consistency().is_ok());
    // Teleport an agent in the property table without updating the grid.
    env.props.row[3] = 31;
    env.props.col[3] = 31;
    assert!(env.check_consistency().is_err());
}

#[test]
fn overfull_scenarios_are_rejected() {
    // More agents than the spawn bands can hold must panic at build time,
    // not corrupt the grid.
    let result = std::panic::catch_unwind(|| {
        let cfg = EnvConfig::small(16, 16, 200).with_spawn_rows(2);
        Environment::new(&cfg)
    });
    assert!(result.is_err());
}

#[test]
fn checked_engines_run_clean() {
    // The whole pipeline under the conflict detector: any scatter bug in
    // any kernel would panic here.
    for model in [ModelKind::lem(), ModelKind::aco()] {
        let cfg =
            SimConfig::new(EnvConfig::small(48, 48, 300).with_seed(8), model).with_checked(true);
        let mut e = GpuEngine::new(cfg, Device::parallel());
        e.run(50);
        e.download_environment()
            .check_consistency()
            .expect("clean run");
    }
}
