//! Shape-level checks of the paper's headline claims at reduced scale.
//! These are the qualitative results EXPERIMENTS.md quantifies at the
//! default/paper scales; here they gate the build at a scale CI can
//! afford.

use pedsim::prelude::*;
use pedsim::stats::BinomialGlm;

/// Throughput of `model` on a square grid after `steps`.
fn throughput(side: usize, per_side: usize, steps: u64, model: ModelKind, seed: u64) -> usize {
    let env = EnvConfig::small(side, side, per_side).with_seed(seed);
    let mut e = GpuEngine::new(SimConfig::new(env, model), simt::Device::parallel());
    e.run(steps);
    e.metrics().expect("metrics").throughput()
}

/// Fig. 6a, low density: LEM and ACO are effectively the same — everyone
/// crosses ("for first 9 simulation scenarios, the throughput for both …
/// is effectively the same").
#[test]
fn low_density_models_equal() {
    let mut lem_total = 0usize;
    let mut aco_total = 0usize;
    for seed in 0..3 {
        lem_total += throughput(64, 120, 700, ModelKind::lem(), seed);
        aco_total += throughput(64, 120, 700, ModelKind::aco(), seed);
    }
    let diff = (lem_total as f64 - aco_total as f64).abs() / lem_total.max(1) as f64;
    assert!(
        diff < 0.15,
        "low-density LEM ({lem_total}) and ACO ({aco_total}) should be close"
    );
    // And most agents actually cross.
    assert!(lem_total as f64 > 0.7 * (3.0 * 240.0), "{lem_total}");
}

/// Fig. 6a, medium density: ACO sustains throughput where LEM degrades
/// (the paper's headline +39.6 %; here we only require a clear win).
#[test]
fn medium_density_aco_wins() {
    let mut lem_total = 0usize;
    let mut aco_total = 0usize;
    for seed in 0..3 {
        // ~30 % fill on a 64x64 grid.
        lem_total += throughput(64, 620, 900, ModelKind::lem(), 100 + seed);
        aco_total += throughput(64, 620, 900, ModelKind::aco(), 100 + seed);
    }
    assert!(
        aco_total as f64 > 1.10 * lem_total as f64,
        "ACO ({aco_total}) should clearly beat LEM ({lem_total}) at medium density"
    );
}

/// Fig. 6a, extreme density: both models gridlock ("when highly congested
/// neither the LEM nor ACO offer a means for pedestrian movement").
#[test]
fn extreme_density_gridlocks_both() {
    for model in [ModelKind::lem(), ModelKind::aco()] {
        // Two 22-row bands at 90 % fill meeting in a 48x48 box: 41 % of
        // the whole grid is occupied, far past the paper's jamming point.
        let env = EnvConfig::small(48, 48, 950)
            .with_seed(7)
            .with_spawn_rows(22);
        let mut e = GpuEngine::new(SimConfig::new(env, model), simt::Device::parallel());
        e.run(400);
        let t = e.metrics().expect("metrics").throughput();
        let frac = t as f64 / 1_900.0;
        assert!(
            frac < 0.10,
            "{} should gridlock at extreme density, crossed {:.0}%",
            model.name(),
            frac * 100.0
        );
    }
}

/// Fig. 6b: CPU and GPU throughput are statistically indistinguishable —
/// the GLM's CPU/GPU indicator is not significant (paper p = 0.6145).
#[test]
fn cpu_gpu_glm_not_significant() {
    let device = simt::Device::parallel();
    let mut glm = BinomialGlm::new();
    for (i, per_side) in [150usize, 250, 350, 450].into_iter().enumerate() {
        for k in 0..2u64 {
            let seed_cpu = 9_000 + i as u64 * 37 + k;
            let seed_gpu = 19_000 + i as u64 * 37 + k;
            let n = 2 * per_side;
            let envc = EnvConfig::small(64, 64, per_side).with_seed(seed_cpu);
            let mut cpu = CpuEngine::new(SimConfig::new(envc, ModelKind::aco()));
            cpu.run(500);
            let envg = EnvConfig::small(64, 64, per_side).with_seed(seed_gpu);
            let mut gpu = GpuEngine::new(SimConfig::new(envg, ModelKind::aco()), device.clone());
            gpu.run(500);
            let x = n as f64 / 100.0;
            glm.push(
                &[x, 0.0],
                cpu.metrics().unwrap().throughput() as u64,
                n as u64,
            );
            glm.push(
                &[x, 1.0],
                gpu.metrics().unwrap().throughput() as u64,
                n as u64,
            );
        }
    }
    let fit = glm.fit().expect("GLM fit");
    assert!(
        fit.p[2] > 0.05,
        "CPU/GPU indicator unexpectedly significant: p = {} (coef {})",
        fit.p[2],
        fit.coef[2]
    );
}

/// Fig. 5a's shape: ACO costs only a modest constant factor over LEM
/// (paper: +11 %). Wall-clock bound kept loose for CI noise.
#[test]
fn aco_overhead_is_modest() {
    use std::time::Instant;
    let env = EnvConfig::small(96, 96, 1_000).with_seed(3);
    let device = simt::Device::parallel();
    let time = |model: ModelKind| {
        let cfg = SimConfig::new(env, model).with_metrics(false);
        let mut e = GpuEngine::new(cfg, device.clone());
        e.run(10); // warm
        let t0 = Instant::now();
        e.run(150);
        t0.elapsed().as_secs_f64()
    };
    let lem = time(ModelKind::lem());
    let aco = time(ModelKind::aco());
    let ratio = aco / lem;
    assert!(
        ratio < 2.5,
        "ACO/LEM time ratio {ratio:.2} is far beyond the paper's ~1.11 shape"
    );
}
