//! Open-boundary acceptance: sources feed, sinks drain, slots recycle,
//! both engines stay bit-identical, batches stay deterministic across
//! pool worker counts, and closed worlds are untouched (their golden
//! trajectory hashes live in tests/multi_group.rs and must keep passing
//! unmodified).

use pedsim::core::engine::cpu::CpuEngine;
use pedsim::core::validate::engines_agree;
use pedsim::prelude::*;
use pedsim::scenario::registry;

fn open_corridor_cfg(seed: u64, model: ModelKind) -> SimConfig {
    let scenario = registry::open_corridor(32, 32, 40, 2.0).with_seed(seed);
    SimConfig::from_scenario(&scenario, model).with_checked(true)
}

#[test]
fn engines_agree_on_open_corridor() {
    for model in [ModelKind::lem(), ModelKind::aco()] {
        assert_eq!(
            engines_agree(open_corridor_cfg(17, model), 120, 10, 4),
            None,
            "{} diverged on open_corridor",
            model.name()
        );
    }
}

#[test]
fn engines_agree_on_open_crossing() {
    for model in [ModelKind::lem(), ModelKind::aco()] {
        let scenario = registry::open_crossing(32, 40, 1.5).with_seed(23);
        let cfg = SimConfig::from_scenario(&scenario, model).with_checked(true);
        assert_eq!(
            engines_agree(cfg, 120, 10, 3),
            None,
            "{} diverged on open_crossing",
            model.name()
        );
    }
}

#[test]
fn open_corridor_reaches_a_flowing_population() {
    let mut e = CpuEngine::new(open_corridor_cfg(5, ModelKind::aco()));
    e.run(200);
    let m = e.metrics().expect("metrics on");
    // The inflow populated the corridor…
    assert!(m.live_count() > 10, "only {} live agents", m.live_count());
    assert!(m.live_density() > 0.0);
    // …and agents have crossed and despawned: cumulative events exceed
    // what is currently live.
    assert!(m.throughput() > 0, "nobody crossed in 200 steps");
    // Sinks drained and slots were recycled: cumulative crossing events
    // exceed the whole 2 × 40 slot pool.
    assert!(
        m.throughput() > 80,
        "only {} crossings — sinks/recycling idle",
        m.throughput()
    );
    assert_eq!(m.live_count(), e.environment().live_count());
    // Flux over the last window is positive once the corridor is warm.
    let flux = m.windowed_flux(64).expect("200 steps observed");
    assert!(flux > 0.0, "zero steady flux");
    e.environment().check_consistency().expect("consistent");
}

#[test]
fn open_world_never_exceeds_capacity_and_all_arrived_never_fires() {
    let scenario = registry::open_corridor(24, 24, 12, 6.0).with_seed(9);
    let cfg = SimConfig::from_scenario(&scenario, ModelKind::lem()).with_checked(true);
    let mut e = CpuEngine::new(cfg);
    for _ in 0..150 {
        e.step();
        let env = e.environment();
        assert!(
            env.live_count() <= 24,
            "live {} > capacity",
            env.live_count()
        );
        let m = e.metrics().expect("metrics");
        assert!(!m.all_arrived(), "open worlds never 'arrive'");
    }
    // With a rate far above the pool, the pool must actually throttle:
    // every one of the 24 slots has been used.
    let env = e.environment();
    assert!(env.live_count() > 0);
    assert!(
        e.metrics().expect("metrics").throughput() >= 24,
        "slots were never recycled"
    );
}

#[test]
fn steady_state_stop_fires_on_a_warm_open_corridor() {
    let scenario = registry::open_corridor(24, 24, 60, 2.0).with_seed(3);
    let cfg = SimConfig::from_scenario(&scenario, ModelKind::aco());
    let mut e = CpuEngine::new(cfg);
    let reason = e.run_until(&StopCondition::steady_or_steps(1_500, 0.6, 64));
    // A free-flowing corridor settles well before the budget.
    assert_eq!(reason, StopReason::SteadyState);
    assert!(e.steps_done() < 1_500);
    let m = e.metrics().expect("metrics");
    assert!(m.windowed_flux(64).expect("window observed") > 0.0);
}

#[test]
fn batch_with_sources_is_deterministic_across_worker_counts() {
    let jobs: Vec<Job> = [1u64, 2, 3]
        .iter()
        .flat_map(|&seed| {
            ["open_corridor", "open_crossing"].map(|world| {
                let scenario = pedsim::scenario::sweep::build_world(world, 24, 16)
                    .expect("registry world")
                    .with_seed(seed);
                Job::gpu(
                    format!("{world}/s{seed}"),
                    SimConfig::from_scenario(&scenario, ModelKind::lem()),
                    StopCondition::steady_or_steps(220, 0.5, 32),
                )
            })
        })
        .collect();
    let a = Batch::new(1).run(&jobs).to_json();
    let b = Batch::new(4).run(&jobs).to_json();
    assert_eq!(a, b, "open-world batch JSON differs across worker counts");
    assert!(a.contains("\"flux\""));
    assert!(a.contains("open_crossing"));
}

#[test]
fn gpu_download_round_trips_the_lifecycle_state() {
    let cfg = open_corridor_cfg(11, ModelKind::lem());
    let device = pedsim::simt::Device::parallel();
    let mut gpu = GpuEngine::new(cfg.clone(), device);
    let mut cpu = CpuEngine::new(cfg);
    gpu.run(90);
    cpu.run(90);
    let env = gpu.download_environment();
    env.check_consistency().expect("download consistent");
    assert_eq!(env.live_count(), cpu.environment().live_count());
    assert_eq!(env.alive, cpu.environment().alive);
    assert_eq!(env.free, cpu.environment().free);
}

mod recycling_properties {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Recycled slots are never double-occupied: at every step of an
        /// open-world run, each live slot appears exactly once in the
        /// index matrix, dead slots appear nowhere, and the free lists
        /// partition the dead slots.
        #[test]
        fn recycled_slots_are_never_double_occupied(
            seed in 0u64..500,
            rate in 1u32..8,
            world_pick in 0usize..2,
        ) {
            let scenario = if world_pick == 1 {
                registry::open_crossing(24, 20, f64::from(rate))
            } else {
                registry::open_corridor(24, 24, 20, f64::from(rate))
            }
            .with_seed(seed);
            let cfg = SimConfig::from_scenario(&scenario, ModelKind::lem()).with_checked(true);
            let mut e = CpuEngine::new(cfg);
            for _ in 0..60 {
                e.step();
                let env = e.environment();
                let mut seen: HashSet<u32> = HashSet::new();
                for (_, _, v) in env.index.iter_cells() {
                    if v != 0 {
                        prop_assert!(seen.insert(v), "slot {v} occupies two cells");
                        prop_assert!(env.is_alive(v as usize), "dead slot {v} on grid");
                    }
                }
                prop_assert_eq!(seen.len(), env.live_count());
                prop_assert!(env.check_consistency().is_ok());
                // Free lists and the grid partition the slot space.
                let free_total: usize = env.free.iter().map(|f| f.len()).sum();
                prop_assert_eq!(free_total + seen.len(), env.total_agents());
            }
            // The goal of recycling: some slot was reused at least once
            // when inflow exceeds capacity for long enough.
            let m = e.metrics().expect("metrics");
            prop_assert!(m.throughput() <= 60 * 40, "sane crossing count");
        }

        /// Heavy spawn/despawn churn cannot desynchronise the agent→cell
        /// position index that sparse stepping navigates by. At every
        /// step of an open-world run: `pos[a] = row[a]·w + col[a]` for
        /// *every* slot (dead ones mirror their last cell, exactly like
        /// `row`/`col`), `index[pos[a]] = a` for live ones
        /// (`check_consistency` pins the round trip), and the sparse
        /// trajectory stays byte-identical to the dense one on both the
        /// scalar and simt backends while slots recycle underneath.
        #[test]
        fn sparse_position_index_survives_spawn_despawn_churn(
            seed in 0u64..500,
            rate in 3u32..9,
            world_pick in 0usize..2,
        ) {
            // Small pools + high inflow force constant recycling.
            let scenario = if world_pick == 1 {
                registry::open_crossing(24, 10, f64::from(rate))
            } else {
                registry::open_corridor(24, 24, 10, f64::from(rate))
            }
            .with_seed(seed);
            let cfg = SimConfig::from_scenario(&scenario, ModelKind::lem()).with_checked(true);
            let mut dense =
                CpuEngine::new(cfg.clone().with_iteration_mode(IterationMode::Dense));
            let mut sparse =
                CpuEngine::new(cfg.clone().with_iteration_mode(IterationMode::Sparse));
            let mut simt_sparse = GpuEngine::new(
                cfg.with_iteration_mode(IterationMode::Sparse),
                pedsim::simt::Device::sequential(),
            );
            for step in 0..60u32 {
                dense.step();
                sparse.step();
                simt_sparse.step();
                let env = sparse.environment();
                let w = env.width();
                for a in 1..=env.total_agents() {
                    let expect =
                        u32::from(env.props.row[a]) * w as u32 + u32::from(env.props.col[a]);
                    prop_assert_eq!(
                        env.pos[a], expect,
                        "step {}: slot {} pos desynchronised (alive: {})",
                        step, a, env.is_alive(a)
                    );
                }
                prop_assert!(env.check_consistency().is_ok(), "step {step}");
                prop_assert_eq!(
                    sparse.mat_snapshot(), dense.mat_snapshot(),
                    "sparse diverged from dense at step {}", step
                );
                prop_assert_eq!(sparse.positions(), dense.positions());
            }
            // The simt sparse path lands on the same state, and its
            // downloaded position index passes the same audit.
            prop_assert_eq!(simt_sparse.mat_snapshot(), sparse.mat_snapshot());
            prop_assert_eq!(simt_sparse.positions(), sparse.positions());
            let genv = simt_sparse.download_environment();
            prop_assert!(genv.check_consistency().is_ok());
            prop_assert_eq!(&genv.pos, &sparse.environment().pos);
            // Churn actually happened: crossings exceed the slot pool.
            let m = sparse.metrics().expect("metrics");
            prop_assert!(m.throughput() >= 20, "only {} crossings — no churn", m.throughput());
        }
    }
}
