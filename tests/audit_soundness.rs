//! Bounded interleaving exploration of the full pooled backend.
//!
//! The pooled backend claims its trajectories are schedule-independent:
//! the claim bytes commute, every other write is structurally disjoint,
//! and all randomness is counter-based. This suite drives the backend's
//! schedule knob ([`PooledEngine::set_schedule_seed`]) through hundreds
//! of Philox-keyed permutations of every stage launch's band issue order
//! and asserts bit-identity with the scalar reference throughout — the
//! explorer's whole-engine acceptance case. Under
//! `--features audit-runtime`, every scatter write in these runs is
//! additionally checked by the write-set race detector.

use pedsim::core::engine::cpu::cpu_engine_small;
use pedsim::core::engine::pooled::pooled_engine_small;
use pedsim::prelude::*;
use pedsim::simt::exec::explore::explore;

/// FNV-1a over the trajectory state (same digest as the parity suites).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn trajectory_hash(e: &impl Engine) -> u64 {
    let mat = e.mat_snapshot();
    let (row, col) = e.positions();
    let mut bytes: Vec<u8> = mat.as_slice().to_vec();
    for v in row.iter().chain(col.iter()) {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a(bytes)
}

/// 300 permuted schedules per model, every one bit-identical to scalar.
#[test]
fn pooled_is_schedule_independent_across_300_interleavings() {
    for model in [ModelKind::lem(), ModelKind::aco()] {
        let mut scalar = cpu_engine_small(20, 20, 24, model, 77);
        scalar.run(15);
        let golden = trajectory_hash(&scalar);

        let explored = explore(0..150u64, |seed| {
            let mut pooled = pooled_engine_small(20, 20, 24, model, 77, 3);
            pooled.set_schedule_seed(Some(seed));
            pooled.run(15);
            trajectory_hash(&pooled)
        })
        .unwrap_or_else(|d| panic!("{}: schedule divergence: {d}", model.name()));
        assert_eq!(
            explored,
            golden,
            "{}: permuted pooled trajectories diverged from scalar",
            model.name()
        );

        // Same budget again at a different thread count: the schedule
        // space depends on `parts`, so this explores fresh interleavings.
        let explored = explore(150..300u64, |seed| {
            let mut pooled = pooled_engine_small(20, 20, 24, model, 77, 5);
            pooled.set_schedule_seed(Some(seed));
            pooled.run(15);
            trajectory_hash(&pooled)
        })
        .unwrap_or_else(|d| panic!("{}: schedule divergence at 5 threads: {d}", model.name()));
        assert_eq!(explored, golden, "{}: 5-thread divergence", model.name());
    }
}

/// Both stage-traversal modes, explicitly: the dense cell sweep and the
/// sparse bucket-group iteration each survive 100 permuted schedules
/// bit-identically. Under `--features audit-runtime` this is the
/// whole-engine acceptance case for the sparse agent-keyed scatters —
/// every bucket-group write of every permuted run passes the write-set
/// race detector.
#[test]
fn both_iteration_modes_are_schedule_independent() {
    use pedsim::core::engine::pooled::PooledEngine;
    let cfg = |mode: IterationMode| {
        let env = EnvConfig::small(20, 20, 24).with_seed(77);
        SimConfig::new(env, ModelKind::lem())
            .with_checked(true)
            .with_iteration_mode(mode)
    };
    let mut scalar = cpu_engine_small(20, 20, 24, ModelKind::lem(), 77);
    scalar.run(15);
    let golden = trajectory_hash(&scalar);
    for mode in [IterationMode::Dense, IterationMode::Sparse] {
        let explored = explore(0..100u64, |seed| {
            let mut pooled = PooledEngine::new(cfg(mode), 3);
            assert_eq!(pooled.iteration_mode(), mode);
            pooled.set_schedule_seed(Some(seed));
            pooled.run(15);
            trajectory_hash(&pooled)
        })
        .unwrap_or_else(|d| panic!("{}: schedule divergence: {d}", mode.name()));
        assert_eq!(
            explored,
            golden,
            "{}: permuted pooled trajectories diverged from scalar",
            mode.name()
        );
    }
}

/// The knob itself is inert: permuted dispatch equals natural dispatch,
/// and switching the seed off mid-run restores natural order cleanly.
#[test]
fn schedule_knob_roundtrip_is_inert() {
    let mut natural = pooled_engine_small(20, 20, 24, ModelKind::lem(), 9, 4);
    natural.run(20);
    let golden = trajectory_hash(&natural);

    let mut toggled = pooled_engine_small(20, 20, 24, ModelKind::lem(), 9, 4);
    toggled.set_schedule_seed(Some(0xA5A5));
    toggled.run(10);
    toggled.set_schedule_seed(None);
    toggled.run(10);
    assert_eq!(trajectory_hash(&toggled), golden);
}
