//! Cross-backend golden parity: every backend in the engine registry —
//! scalar, pooled at any thread count, simt — must produce bit-identical
//! trajectories on every registry world. The pooled backend's claim
//! protocol is *proven* equivalent to the scalar gather in unit tests
//! (`engine::pooled`); this suite pins the whole-trajectory consequence,
//! including the legacy golden hashes captured before the backend
//! registry existed.

use pedsim::core::engine::pooled::band_ranges;
use pedsim::core::engine::Backend;
use pedsim::prelude::*;
use pedsim::scenario::registry;

/// FNV-1a over the trajectory state: the environment matrix plus every
/// agent position (same hash as the multi-group golden suite).
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn trajectory_hash(e: &impl Engine) -> u64 {
    let mat = e.mat_snapshot();
    let (row, col) = e.positions();
    let mut bytes: Vec<u8> = mat.as_slice().to_vec();
    for v in row.iter().chain(col.iter()) {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a(bytes)
}

/// Run `cfg` for `steps` on every registry backend × thread count ×
/// stage-traversal mode and return the scalar dense hash after
/// asserting every other cell matches it. Sparse stepping is required
/// to be a pure traversal-order optimisation: the O(live-agents) loops
/// must reproduce the O(cells) sweep byte for byte on every backend.
fn assert_backends_agree(name: &str, cfg: SimConfig, steps: u64) -> u64 {
    let mut scalar = Backend::scalar()
        .build(cfg.clone().with_iteration_mode(IterationMode::Dense))
        .expect("scalar");
    scalar.run(steps);
    let golden = trajectory_hash(&scalar);
    for mode in [IterationMode::Dense, IterationMode::Sparse] {
        let cfg = cfg.clone().with_iteration_mode(mode);
        let tag = mode.name();
        let mut scalar = Backend::scalar().build(cfg.clone()).expect("scalar");
        scalar.run(steps);
        assert_eq!(
            trajectory_hash(&scalar),
            golden,
            "{name}: scalar/{tag} diverged from scalar/dense"
        );
        for threads in [1usize, 2, 4] {
            let mut pooled = Backend::pooled(threads).build(cfg.clone()).expect("pooled");
            pooled.run(steps);
            assert_eq!(
                trajectory_hash(&pooled),
                golden,
                "{name}: pooled/t{threads}/{tag} diverged from scalar/dense"
            );
        }
        let mut simt = Backend::simt().build(cfg).expect("simt");
        simt.run(steps);
        assert_eq!(
            trajectory_hash(&simt),
            golden,
            "{name}: simt/{tag} diverged from scalar/dense"
        );
    }
    golden
}

/// The legacy golden hashes (captured on the pre-registry scalar build)
/// hold for *every* backend: trajectory equality is anchored to fixed
/// bytes, not merely to mutual agreement.
#[test]
fn legacy_goldens_hold_on_every_backend() {
    let env = EnvConfig::small(32, 32, 30).with_seed(42);
    let cases: [(&str, SimConfig, u64, u64); 3] = [
        (
            "corridor/lem",
            SimConfig::new(env, ModelKind::lem()),
            60,
            0x8136e34d28a027bf,
        ),
        (
            "corridor/aco",
            SimConfig::new(env, ModelKind::aco()),
            60,
            0xbe1dfff579672886,
        ),
        (
            "doorway/lem",
            SimConfig::from_scenario(
                &registry::doorway(32, 32, 60, 5).with_seed(7),
                ModelKind::lem(),
            ),
            60,
            0x37c39781e339da30,
        ),
    ];
    for (name, cfg, steps, golden) in cases {
        let agreed = assert_backends_agree(name, cfg, steps);
        assert_eq!(
            agreed, golden,
            "{name}: backends agree on a wrong trajectory"
        );
    }
}

/// Every registry world (open-boundary lifecycles included) runs
/// bit-identically across the whole backend × thread-count matrix.
#[test]
fn all_registry_worlds_agree_across_backends() {
    for name in registry::names() {
        let scenario = pedsim::scenario::sweep::build_world(name, 32, 12)
            .expect("registry world")
            .with_seed(11);
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let cfg = SimConfig::from_scenario(&scenario, model).with_checked(true);
            assert_backends_agree(&format!("{name}/{}", model.name()), cfg, 30);
        }
    }
}

mod partition_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The pooled backend's tile partition covers every cell exactly
        /// once for any extent and band count: ranges are contiguous,
        /// orderd, within bounds, and their union is `0..n`.
        #[test]
        fn band_partition_covers_every_cell_exactly_once(
            n in 0usize..10_000,
            parts in 0usize..64,
        ) {
            let ranges = band_ranges(n, parts);
            prop_assert_eq!(ranges.len(), parts.max(1));
            let mut next = 0usize;
            for r in &ranges {
                prop_assert_eq!(r.start, next, "gap or overlap at {}", next);
                prop_assert!(r.end >= r.start);
                next = r.end;
            }
            prop_assert_eq!(next, n, "partition does not cover 0..{}", n);
            // Band sizes differ by at most one (balanced work).
            let sizes: Vec<usize> = ranges.iter().map(|r| r.end - r.start).collect();
            let (min, max) = (
                sizes.iter().copied().min().unwrap_or(0),
                sizes.iter().copied().max().unwrap_or(0),
            );
            prop_assert!(max - min <= 1, "unbalanced bands: {:?}", sizes);
        }
    }
}
