//! Determinism guard for the observability surface (tier-2).
//!
//! The telemetry journal and the results registry split every record
//! into a deterministic body and a wall-clock tail. This test pins the
//! deterministic half: canonical journal lines and registry-row
//! deterministic prefixes must be **byte-identical** across repeat runs
//! of the same configuration and across pool worker counts — the same
//! guarantee `BatchReport::to_json` already gives, extended to the new
//! sinks.

use pedsim::obs::journal;
use pedsim::prelude::*;
use pedsim::runner::{Batch, Job};
use pedsim::scenario::registry;

/// A small mixed batch: classic closed corridor on both engines plus an
/// open-boundary scenario world, several seeds each.
fn jobs() -> Vec<Job> {
    let mut jobs = Vec::new();
    for seed in [3, 4] {
        let env = EnvConfig::small(24, 24, 12).with_seed(seed);
        let cfg = SimConfig::new(env, ModelKind::lem());
        jobs.push(Job::cpu(
            format!("closed/s{seed}/cpu"),
            cfg.clone(),
            StopCondition::Steps(40),
        ));
        jobs.push(Job::gpu(
            format!("closed/s{seed}/gpu"),
            cfg,
            StopCondition::Steps(40),
        ));
        let open = registry::open_corridor(24, 24, 30, 1.5).with_seed(seed);
        jobs.push(Job::gpu(
            format!("open/s{seed}"),
            SimConfig::from_scenario(&open, ModelKind::aco()),
            StopCondition::Steps(40),
        ));
    }
    jobs
}

fn canonical_journal(report: &pedsim::runner::BatchReport) -> Vec<String> {
    report
        .results
        .iter()
        .map(|r| journal::canonical(&r.journal_record().line()))
        .collect()
}

fn registry_prefixes(report: &pedsim::runner::BatchReport) -> Vec<String> {
    report
        .results
        .iter()
        .map(|r| {
            r.registry_row("guard", "smoke", "commit0fixed")
                .deterministic_prefix()
        })
        .collect()
}

#[test]
fn journal_and_registry_are_byte_identical_across_runs_and_worker_counts() {
    let pool1 = Batch::new(1);
    let a = pool1.run(&jobs());
    let b = pool1.run(&jobs()); // repeat, same worker count
    let c = Batch::new(4).run(&jobs()); // different worker count

    let ja = canonical_journal(&a);
    assert_eq!(ja, canonical_journal(&b), "journal drifted across repeats");
    assert_eq!(
        ja,
        canonical_journal(&c),
        "journal drifted across worker counts"
    );
    // Canonicalisation really did strip the (noisy) wall tail.
    for line in &ja {
        assert!(!line.contains("\"wall\""), "wall tail leaked: {line}");
        assert!(line.starts_with("{\"schema\": \"pedsim.run.v1\""));
    }

    let ra = registry_prefixes(&a);
    assert_eq!(
        ra,
        registry_prefixes(&b),
        "registry rows drifted across repeats"
    );
    assert_eq!(
        ra,
        registry_prefixes(&c),
        "registry rows drifted across worker counts"
    );
    // Every prefix carries a full 16-hex-char config fingerprint.
    for prefix in &ra {
        let config = prefix.split(',').nth(1).expect("config column");
        assert_eq!(config.len(), 16, "bad fingerprint in {prefix}");
        assert!(config.chars().all(|c| c.is_ascii_hexdigit()));
    }
}

#[test]
fn order_parameters_report_through_the_batch_surface() {
    let report = Batch::new(2).run(&jobs());
    for r in &report.results {
        // Metrics are on for every job, so the order parameters are
        // always measured; the gridlock gauge needs the full 64-step
        // window, which these 40-step runs never reach.
        assert!(r.bands.is_some(), "{}: no band count", r.label);
        assert!(r.segregation.is_some(), "{}: no segregation", r.label);
        let s = r.segregation.expect("checked");
        assert!((0.0..=1.0).contains(&s), "{}: segregation {s}", r.label);
        assert_eq!(r.gridlock_risk, None, "{}: risk before window", r.label);
    }
    // CPU and GPU agree on the deterministic observables (bit-identical
    // trajectories ⇒ identical final configurations).
    for seed in [3, 4] {
        let cpu = report
            .results
            .iter()
            .find(|r| r.label == format!("closed/s{seed}/cpu"))
            .expect("cpu row");
        let gpu = report
            .results
            .iter()
            .find(|r| r.label == format!("closed/s{seed}/gpu"))
            .expect("gpu row");
        assert_eq!(cpu.bands, gpu.bands);
        assert_eq!(cpu.segregation, gpu.segregation);
        assert_eq!(cpu.config, gpu.config, "config hash must be engine-free");
    }
}

#[test]
fn gridlock_gauge_engages_once_the_window_fills() {
    // Run past the 64-step warning window: the gauge must report a
    // value (possibly 0.0) instead of None.
    let env = EnvConfig::small(24, 24, 12).with_seed(7);
    let job = Job::gpu(
        "long",
        SimConfig::new(env, ModelKind::lem()),
        StopCondition::Steps(80),
    );
    let report = Batch::new(1).run(&[job]);
    let r = &report.results[0];
    let risk = r.gridlock_risk.expect("window filled");
    assert!((0.0..=1.0).contains(&risk), "risk {risk} out of range");
}
