//! Open-boundary corridor: continuous opposing streams instead of one
//! transient wave.
//!
//! Every closed world spawns its crowd once and ends at arrival; this
//! example runs the paper's corridor with **open boundaries** — both edge
//! bands feed a deterministic Poisson-like inflow, both targets are sinks
//! that remove arriving agents and recycle their property slots — and
//! watches the flow ramp from an empty corridor to steady state, where it
//! reads the fundamental-diagram quantities: windowed flux, live density,
//! and the inflow-to-throughput balance.
//!
//! ```text
//! cargo run --release --example open_corridor [-- --smoke]
//! ```

use pedsim::prelude::*;
use pedsim::scenario::registry;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // --smoke is the CI scale: a shorter corridor, a lighter inflow.
    let (side, capacity, rate, budget) = if smoke {
        (32usize, 60usize, 1.5f64, 500u64)
    } else {
        (64usize, 200usize, 4.0f64, 2_000u64)
    };
    println!(
        "open {side}x{side} corridor: inflow {rate}/step per group, \
         {capacity} recyclable slots per group, budget {budget} steps\n"
    );

    let scenario = registry::open_corridor(side, side, capacity, rate).with_seed(97);
    let cfg = SimConfig::from_scenario(&scenario, ModelKind::aco());
    let mut engine = GpuEngine::new(cfg, pedsim::simt::Device::parallel());

    // Ramp-up trace: the corridor starts empty and fills toward the
    // inflow/outflow equilibrium.
    println!(
        "{:>6} {:>8} {:>10} {:>12} {:>12}",
        "step", "live", "density", "flux", "crossings"
    );
    let window = 64u64;
    let trace_every = budget / 10;
    let stop = StopCondition::steady_or_steps(budget, (rate * 0.2).max(0.2), window);
    let reason = loop {
        engine.run(trace_every);
        let m = engine.metrics().expect("metrics on by default");
        println!(
            "{:>6} {:>8} {:>10.5} {:>12} {:>12}",
            engine.steps_done(),
            m.live_count(),
            m.live_density(),
            m.windowed_flux(window)
                .map_or("warming".into(), |f| format!("{f:.3}")),
            m.throughput(),
        );
        // Trace granularity: the stop (steady flux or the step budget)
        // is evaluated once per trace batch.
        if let Some(reason) = stop.check(engine.steps_done(), engine.metrics()) {
            break reason;
        }
    };

    let m = engine.metrics().expect("metrics");
    let flux = m.windowed_flux(window).unwrap_or(0.0);
    println!(
        "\n{} after {} steps: {} live agents ({:.2}% of the grid), \
         flux {flux:.3} crossings/step against an offered load of {:.3}",
        match reason {
            StopReason::SteadyState => "flux reached steady state",
            _ => "step budget exhausted before the flux settled",
        },
        engine.steps_done(),
        m.live_count(),
        m.live_density() * 100.0,
        2.0 * rate,
    );
    println!(
        "{} agents crossed in total — {:.1}x the slot pool: sinks recycle \
         slots, so the streams never run dry.",
        m.throughput(),
        m.throughput() as f64 / (2 * capacity).max(1) as f64,
    );
}
