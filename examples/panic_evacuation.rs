//! Panic-alarm scenario (the paper's §VII future work, implemented):
//! a crisis fires mid-run and the crowd's decision behaviour changes.
//! Compares throughput and movement with and without the alarm.
//!
//! ```text
//! cargo run --release --example panic_evacuation
//! ```

use pedsim::core::extensions::{PanicAlarm, PanicParams};
use pedsim::prelude::*;

fn main() {
    let env = EnvConfig::small(64, 64, 400).with_seed(99);
    let steps = 600;
    let trigger = 200;

    // Calm baseline.
    let mut calm = CpuEngine::new(SimConfig::new(env, ModelKind::aco()));
    calm.run(steps);
    let calm_m = calm.metrics().expect("metrics");

    // The alarm fires at step 200: agents stop trusting trails (α → 0)
    // and over-weight the goal (β × 2) — flight behaviour.
    let alarm = PanicAlarm::new(PanicParams {
        trigger_step: trigger,
        sigma_factor: 1.0,
        alpha_factor: 0.0,
        beta_factor: 2.0,
    });
    let mut panicked = CpuEngine::new(SimConfig::new(env, ModelKind::aco()));
    alarm.run(&mut panicked, steps);
    let panic_m = panicked.metrics().expect("metrics");

    println!("ACO crowd of 800 on a 64x64 grid, {steps} steps, alarm at {trigger}:");
    println!(
        "  calm run : {} crossed, {} total moves",
        calm_m.throughput(),
        calm_m.total_moves
    );
    println!(
        "  panic run: {} crossed, {} total moves",
        panic_m.throughput(),
        panic_m.total_moves
    );
    println!(
        "\npanic removes trail-following: the crowd loses the lane structure \
         that bi-directional flow needs, so late-run throughput degrades \
         (compare the two numbers above)."
    );

    // The same alarm applied to a LEM crowd: σ inflation (erratic choices).
    let lem_alarm = PanicAlarm::new(PanicParams {
        trigger_step: trigger,
        sigma_factor: 6.0,
        alpha_factor: 1.0,
        beta_factor: 1.0,
    });
    let mut lem_calm = CpuEngine::new(SimConfig::new(env, ModelKind::lem()));
    lem_calm.run(steps);
    let mut lem_panic = CpuEngine::new(SimConfig::new(env, ModelKind::lem()));
    lem_alarm.run(&mut lem_panic, steps);
    println!(
        "\nLEM comparison — calm: {} crossed, panicked (sigma x6): {} crossed",
        lem_calm.metrics().expect("m").throughput(),
        lem_panic.metrics().expect("m").throughput()
    );
}
