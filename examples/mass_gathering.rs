//! Mass-gathering stress scenario (the paper's motivating use case):
//! sweep crowd density until the corridor gridlocks, reporting throughput
//! and the gridlock onset for both models.
//!
//! ```text
//! cargo run --release --example mass_gathering
//! ```

use pedsim::prelude::*;

fn main() {
    let side = 96;
    let steps = 1_200;
    let cells = side * side;
    println!(
        "corridor {side}x{side} ({cells} cells), {steps} steps per run\n\
         density sweep to gridlock:\n"
    );
    println!(
        "{:>8} {:>7} {:>12} {:>12} {:>10}",
        "agents", "fill%", "LEM crossed", "ACO crossed", "ACO gain"
    );

    let device = simt::Device::parallel();
    let mut gridlocked_at = None;
    for i in 1..=12 {
        let agents = cells * i / 30; // up to 40 % fill
        let env = EnvConfig::small(side, side, agents / 2).with_seed(7 + i as u64);
        let run = |model: ModelKind| -> usize {
            let mut e = GpuEngine::new(SimConfig::new(env, model), device.clone());
            e.run(steps as u64);
            e.metrics().expect("metrics").throughput()
        };
        let lem = run(ModelKind::lem());
        let aco = run(ModelKind::aco());
        let gain = if lem > 0 {
            format!("{:+.0}%", (aco as f64 / lem as f64 - 1.0) * 100.0)
        } else if aco > 0 {
            "inf".into()
        } else {
            "—".into()
        };
        println!(
            "{:>8} {:>6.1}% {:>12} {:>12} {:>10}",
            agents,
            100.0 * agents as f64 / cells as f64,
            lem,
            aco,
            gain
        );
        if lem == 0 && aco == 0 && gridlocked_at.is_none() {
            gridlocked_at = Some(agents);
        }
    }
    match gridlocked_at {
        Some(a) => println!(
            "\ntotal gridlock from ~{a} agents — the paper sees the same \
             regime past 51,200 agents on its 480x480 grid"
        ),
        None => println!("\nno total gridlock in this sweep; raise the density ceiling to find it"),
    }
}
