//! Doorway bottleneck: LEM vs ACO throughput as the doorway shrinks.
//!
//! The paper's corridor has no interior geometry; the scenario subsystem
//! adds it. Here the corridor is pinched to a `gap`-cell doorway at
//! mid-height and both models push the same crowd through. Watch two
//! effects: throughput collapsing as the gap narrows, and ACO's trails
//! helping same-direction pedestrians queue through the opening instead
//! of fighting head-on inside it.
//!
//! All ten (gap, model) replicas run as one concurrent batch on the
//! `pedsim-runner` pool, each stopping as soon as its crowd has fully
//! crossed (or the step budget runs out) instead of burning the budget
//! blind.
//!
//! ```text
//! cargo run --release --example doorway_bottleneck [-- --smoke]
//! ```

use pedsim::prelude::*;
use pedsim::scenario::registry;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // --smoke is the CI scale: a quarter of the crowd on the same grid.
    let (side, per_side, steps) = if smoke {
        (48usize, 120usize, 300u64)
    } else {
        (64usize, 350usize, 900u64)
    };
    let gaps = [side, 16, 8, 4, 2];
    println!(
        "{side}x{side} corridor, {} agents, budget {steps} steps, doorway at mid-height\n",
        per_side * 2
    );

    let jobs: Vec<Job> = gaps
        .iter()
        .flat_map(|&gap| {
            [ModelKind::lem(), ModelKind::aco()].map(|model| {
                let scenario = if gap >= side {
                    // Fully open: the plain paper corridor (row-table routing).
                    registry::paper_corridor(&EnvConfig::small(side, side, per_side).with_seed(29))
                } else {
                    registry::doorway(side, side, per_side, gap).with_seed(29)
                };
                Job::gpu(
                    format!("gap{gap:03}/{}", model.name()),
                    SimConfig::from_scenario(&scenario, model),
                    StopCondition::arrived_or_steps(steps),
                )
            })
        })
        .collect();
    let report = Batch::auto().run(&jobs);

    println!(
        "{:>8} {:>12} {:>12} {:>10} {:>16}",
        "gap", "LEM crossed", "ACO crossed", "ACO gain", "steps (LEM/ACO)"
    );
    for &gap in &gaps {
        let get = |model: &str| {
            report
                .with_label(&format!("gap{gap:03}/{model}"))
                .next()
                .expect("one result per job")
        };
        let (lem_r, aco_r) = (get("LEM"), get("ACO"));
        let lem = lem_r.throughput.expect("metrics on");
        let aco = aco_r.throughput.expect("metrics on");
        let gain = if lem > 0 {
            format!("{:+.0}%", (aco as f64 / lem as f64 - 1.0) * 100.0)
        } else if aco > 0 {
            "inf".into()
        } else {
            "—".into()
        };
        let label = if gap >= side {
            "open".to_string()
        } else {
            gap.to_string()
        };
        println!(
            "{label:>8} {lem:>12} {aco:>12} {gain:>10} {:>16}",
            format!("{}/{}", lem_r.steps, aco_r.steps)
        );
    }

    println!(
        "\n{} of {} replicas finished before the budget ({} simulated steps total)",
        report.arrived, report.jobs, report.steps_total
    );
    println!(
        "\nthe gap is the capacity limit: once it is narrower than the\n\
         natural lane count, throughput is set by the doorway, not the\n\
         model — but trail-following still decides how orderly the queue\n\
         in front of it is."
    );
}
