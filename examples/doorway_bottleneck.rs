//! Doorway bottleneck: LEM vs ACO throughput as the doorway shrinks.
//!
//! The paper's corridor has no interior geometry; the scenario subsystem
//! adds it. Here the corridor is pinched to a `gap`-cell doorway at
//! mid-height and both models push the same crowd through. Watch two
//! effects: throughput collapsing as the gap narrows, and ACO's trails
//! helping same-direction pedestrians queue through the opening instead
//! of fighting head-on inside it.
//!
//! ```text
//! cargo run --release --example doorway_bottleneck
//! ```

use pedsim::prelude::*;
use pedsim::scenario::registry;

fn main() {
    let (side, per_side, steps) = (64usize, 350usize, 900u64);
    let device = pedsim::simt::Device::parallel();
    println!(
        "{side}x{side} corridor, {} agents, {steps} steps, doorway at mid-height\n",
        per_side * 2
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "gap", "LEM crossed", "ACO crossed", "ACO gain"
    );

    for gap in [side, 16, 8, 4, 2] {
        let run = |model: ModelKind| -> usize {
            let scenario = if gap >= side {
                // Fully open: the plain paper corridor (row-table routing).
                registry::paper_corridor(&EnvConfig::small(side, side, per_side).with_seed(29))
            } else {
                registry::doorway(side, side, per_side, gap).with_seed(29)
            };
            let cfg = SimConfig::from_scenario(scenario, model);
            let mut e = GpuEngine::new(cfg, device.clone());
            e.run(steps);
            e.metrics().expect("metrics").throughput()
        };
        let lem = run(ModelKind::lem());
        let aco = run(ModelKind::aco());
        let gain = if lem > 0 {
            format!("{:+.0}%", (aco as f64 / lem as f64 - 1.0) * 100.0)
        } else if aco > 0 {
            "inf".into()
        } else {
            "—".into()
        };
        let label = if gap >= side {
            "open".to_string()
        } else {
            gap.to_string()
        };
        println!("{label:>8} {lem:>12} {aco:>12} {gain:>10}");
    }

    println!(
        "\nthe gap is the capacity limit: once it is narrower than the\n\
         natural lane count, throughput is set by the doorway, not the\n\
         model — but trail-following still decides how orderly the queue\n\
         in front of it is."
    );
}
