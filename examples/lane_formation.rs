//! Lane formation in bi-directional flow: the mechanism behind the
//! paper's Figure-6a result. ACO's pheromone trails make same-direction
//! pedestrians follow each other, so opposing streams self-organise into
//! lanes (Helbing et al.'s classic observation, paper ref. [24]); LEM has
//! no such coupling. This example tracks the lane index over time for
//! both models at a density where the effect decides throughput.
//!
//! ```text
//! cargo run --release --example lane_formation
//! ```

use pedsim::core::metrics::lane_index;
use pedsim::prelude::*;

fn main() {
    let env = EnvConfig::small(72, 72, 700).with_seed(31); // ~27 % fill
    let device = simt::Device::parallel();
    let checkpoints = [50u64, 100, 200, 400, 800, 1_600];

    println!("lane index over time (0 = mixed, 1 = segregated columns)\n");
    println!("{:>8} {:>10} {:>10}", "step", "LEM", "ACO");

    let mut lem = GpuEngine::new(SimConfig::new(env, ModelKind::lem()), device.clone());
    let mut aco = GpuEngine::new(SimConfig::new(env, ModelKind::aco()), device.clone());
    let mut done = 0u64;
    for &cp in &checkpoints {
        let burst = cp - done;
        lem.run(burst);
        aco.run(burst);
        done = cp;
        println!(
            "{:>8} {:>10.3} {:>10.3}",
            cp,
            lane_index(&lem.mat_snapshot()),
            lane_index(&aco.mat_snapshot())
        );
    }

    let lem_m = lem.metrics().expect("metrics");
    let aco_m = aco.metrics().expect("metrics");
    println!(
        "\nthroughput after {} steps — LEM: {}, ACO: {}",
        done,
        lem_m.throughput(),
        aco_m.throughput()
    );
    println!(
        "\nthe ACO column should climb faster and higher: trails are the \
         lane-formation mechanism, and lanes are why ACO sustains throughput \
         at medium density where LEM collapses (paper Fig. 6a, density 10+)."
    );
}
