//! Lane formation in bi-directional flow: the mechanism behind the
//! paper's Figure-6a result. ACO's pheromone trails make same-direction
//! pedestrians follow each other, so opposing streams self-organise into
//! lanes (Helbing et al.'s classic observation, paper ref. [24]); LEM has
//! no such coupling. This example tracks the lane index over time for
//! both models at a density where the effect decides throughput.
//!
//! The time series comes from a **batch**: one replica per (model,
//! checkpoint) pair, all running concurrently on the `pedsim-runner`
//! pool. Engines are deterministic, so a fresh replica stopped at step
//! 400 is bit-identical to a 1,600-step run inspected mid-flight — which
//! turns a serial checkpoint walk into an embarrassingly parallel job
//! list.
//!
//! ```text
//! cargo run --release --example lane_formation
//! ```

use pedsim::prelude::*;

fn main() {
    let env = EnvConfig::small(72, 72, 700).with_seed(31); // ~27 % fill
    let checkpoints = [50u64, 100, 200, 400, 800, 1_600];

    let jobs: Vec<Job> = checkpoints
        .iter()
        .flat_map(|&cp| {
            [ModelKind::lem(), ModelKind::aco()].map(|model| {
                Job::gpu(
                    format!("step{cp:05}/{}", model.name()),
                    SimConfig::new(env, model),
                    StopCondition::Steps(cp),
                )
            })
        })
        .collect();
    let report = Batch::auto().run(&jobs);
    let get = |cp: u64, model: &str| {
        report
            .with_label(&format!("step{cp:05}/{model}"))
            .next()
            .expect("one result per job")
    };

    println!("lane index over time (0 = mixed, 1 = segregated columns)\n");
    println!("{:>8} {:>10} {:>10}", "step", "LEM", "ACO");
    for &cp in &checkpoints {
        println!(
            "{:>8} {:>10.3} {:>10.3}",
            cp,
            get(cp, "LEM").lane_index.expect("metrics on"),
            get(cp, "ACO").lane_index.expect("metrics on"),
        );
    }

    let last = *checkpoints.last().expect("non-empty");
    println!(
        "\nthroughput after {} steps — LEM: {}, ACO: {}",
        last,
        get(last, "LEM").throughput.expect("metrics on"),
        get(last, "ACO").throughput.expect("metrics on"),
    );
    println!(
        "\nthe ACO column should climb faster and higher: trails are the \
         lane-formation mechanism, and lanes are why ACO sustains throughput \
         at medium density where LEM collapses (paper Fig. 6a, density 10+)."
    );
}
