//! Four-way crossing: four orthogonal streams share one plaza.
//!
//! The paper models exactly two opposing streams; the N-group
//! generalisation lifts that limit. Here four groups enter a plaza, one
//! per edge, every one headed for the opposite edge — all four cross
//! mid-grid. Each group routes by its own flow-field plane and follows
//! its own pheromone field, so trails only attract same-direction
//! pedestrians (Jiang et al.'s dynamic-navigation-field setting,
//! arXiv:1705.03569, on the paper's cellular substrate).
//!
//! Every (density, model) replica runs as one concurrent batch on the
//! `pedsim-runner` pool with full early termination.
//!
//! ```text
//! cargo run --release --example four_way_crossing [-- --smoke]
//! ```

use pedsim::grid::cell::Group;
use pedsim::prelude::*;
use pedsim::scenario::registry;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // --smoke is the CI scale: a smaller plaza, thinner streams.
    let (side, per_groups, steps) = if smoke {
        (32usize, vec![20usize, 40], 300u64)
    } else {
        (64usize, vec![60usize, 120, 200], 900u64)
    };
    println!("{side}x{side} plaza, four orthogonal streams, budget {steps} steps\n");

    let jobs: Vec<Job> = per_groups
        .iter()
        .flat_map(|&per| {
            [ModelKind::lem(), ModelKind::aco()].map(|model| {
                let scenario = registry::four_way_crossing(side, per).with_seed(41);
                Job::gpu(
                    format!("n{:04}/{}", per * 4, model.name()),
                    SimConfig::from_scenario(&scenario, model),
                    StopCondition::settled_or_steps(steps, 2, 40),
                )
            })
        })
        .collect();
    let report = Batch::auto().run(&jobs);

    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>8} {:>10}",
        "agents", "model", "crossed", "of", "steps", "stop"
    );
    for r in &report.results {
        println!(
            "{:>8} {:>6} {:>10} {:>10} {:>8} {:>10}",
            r.agents,
            r.model,
            r.throughput.expect("metrics on"),
            r.agents,
            r.steps,
            r.stop.name()
        );
    }

    // Per-stream breakdown for the densest ACO run: all four directions
    // must make progress, not just the pair the old two-group model knew.
    // (Engines are bit-identical, so re-running on the parallel GPU
    // engine reproduces the batch replica's trajectory exactly.)
    let per = *per_groups.last().expect("at least one density");
    let scenario = registry::four_way_crossing(side, per).with_seed(41);
    let mut e = GpuEngine::new(
        SimConfig::from_scenario(&scenario, ModelKind::aco()),
        pedsim::simt::Device::parallel(),
    );
    e.run_until(&StopCondition::settled_or_steps(steps, 2, 40));
    let m = e.metrics().expect("metrics");
    println!("\nper-stream arrivals at {} agents (ACO):", per * 4);
    for (gi, name) in ["north→south", "south→north", "west→east", "east→west"]
        .iter()
        .enumerate()
    {
        println!("  {name:>12}: {:>5} of {per}", m.crossed(Group::new(gi)));
    }
    println!(
        "\nfour flow-field planes route four streams through one shared\n\
         plaza; per-group pheromone keeps trail-following within each\n\
         direction instead of dragging streams into each other."
    );
}
