//! Quickstart: run a small bi-directional crossing under both models and
//! print throughput plus an ASCII view of the environment.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pedsim::prelude::*;

fn render(mat: &pedsim::grid::Matrix<u8>) -> String {
    use pedsim::grid::cell::{CELL_BOTTOM, CELL_TOP};
    let mut s = String::new();
    for r in 0..mat.height() {
        for c in 0..mat.width() {
            s.push(match mat.get(r, c) {
                CELL_TOP => 'v',    // top group walks down
                CELL_BOTTOM => '^', // bottom group walks up
                _ => '.',
            });
        }
        s.push('\n');
    }
    s
}

fn main() {
    // A 48x48 corridor, 180 pedestrians per side, fixed seed.
    let env = EnvConfig::small(48, 48, 180).with_seed(42);
    let steps = 400;

    for model in [ModelKind::lem(), ModelKind::aco()] {
        let cfg = SimConfig::new(env, model);
        let mut engine = GpuEngine::new(cfg, simt::Device::parallel());
        engine.run(steps);
        let m = engine.metrics().expect("metrics are on by default");
        println!(
            "{}: {}/{} crossed in {} steps ({} moves total)",
            model.name(),
            m.throughput(),
            2 * env.agents_per_side,
            steps,
            m.total_moves,
        );
    }

    // Show the mid-run state of an ACO run (lane formation is visible as
    // vertical streaks of one direction).
    let mut engine = GpuEngine::new(
        SimConfig::new(env, ModelKind::aco()),
        simt::Device::parallel(),
    );
    engine.run(120);
    println!("\nACO state after 120 steps ('v' walks down, '^' walks up):\n");
    print!("{}", render(&engine.mat_snapshot()));
    println!(
        "\nlane index: {:.3} (0 = mixed, 1 = fully segregated columns)",
        pedsim::core::metrics::lane_index(&engine.mat_snapshot())
    );
}
