//! Separated scanning vs moving ranges (the paper's §VII future work,
//! implemented): LEM agents that look several cells ahead avoid walking
//! into congestion they cannot yet touch.
//!
//! ```text
//! cargo run --release --example scan_range
//! ```

use pedsim::prelude::*;

fn main() {
    let env = EnvConfig::small(72, 72, 600).with_seed(5);
    let steps = 900;
    let device = simt::Device::parallel();

    println!("LEM with widened scanning range (move range stays 1):\n");
    println!("{:>12} {:>12} {:>12}", "scan range", "crossed", "moves");
    for scan_range in [1u8, 2, 4, 6] {
        let model = ModelKind::Lem(LemParams {
            scan_range,
            ..LemParams::default()
        });
        let mut e = GpuEngine::new(SimConfig::new(env, model), device.clone());
        e.run(steps);
        let m = e.metrics().expect("metrics");
        println!(
            "{:>12} {:>12} {:>12}",
            scan_range,
            m.throughput(),
            m.total_moves
        );
    }
    println!(
        "\nscan range 1 is the paper's baseline; larger ranges penalise \
         congested rays (extensions::ranges), trading a little per-step \
         cost for fewer head-on encounters."
    );
}
